// Approximate probabilistic counters (§3.3, Algorithm 3).
//
// An increment on a counter with value V succeeds with probability
// p = log2(n) / (beta * V); on success the counter gains 1/p. The estimate is
// unbiased, and by Lemma 3.6 the drift over a window of Delta_V increments is
// o(Delta_V) whp in n whenever Delta_V = Omega(beta * V). Small counters
// (V <= log n / beta, i.e. p >= 1) update deterministically and exactly.
//
// Morris and Steele-Tristan counters are included for the §3.3 comparison
// bench: Morris optimizes register bits (too coarse here); Steele counters
// update with probability 2^-floor(log2 V) (accurate but update-frequent);
// the paper's variant couples p to the tree size n to get both infrequent
// updates and whp-in-n accuracy.
#pragma once

#include <cmath>

#include "util/random.hpp"

namespace pimkd::core {

struct CounterStep {
  bool updated = false;  // did the coin land heads (copies must be written)?
  double delta = 0.0;    // signed change applied on success
};

// Success probability for current value v (clamped to [0, 1]).
inline double counter_probability(double v, double beta, double n) {
  if (v <= 0) return 1.0;
  const double p = std::log2(std::max(n, 2.0)) / (beta * v);
  return p >= 1.0 ? 1.0 : p;
}

// One increment attempt (Algorithm 3).
inline CounterStep counter_increment(double v, double beta, double n,
                                     Rng& rng) {
  const double p = counter_probability(v, beta, n);
  if (p >= 1.0) return {true, 1.0};
  if (rng.next_bernoulli(p)) return {true, 1.0 / p};
  return {false, 0.0};
}

// One decrement attempt (the symmetric case discussed after Lemma 3.6).
inline CounterStep counter_decrement(double v, double beta, double n,
                                     Rng& rng) {
  const double p = counter_probability(v, beta, n);
  if (p >= 1.0) return {true, -1.0};
  if (rng.next_bernoulli(p)) return {true, -1.0 / p};
  return {false, 0.0};
}

// --- Comparison counters for the §3.3 bench --------------------------------

// Morris 1978: stores an exponent c, estimates 2^c - 1; increments with
// probability 2^-c.
class MorrisCounter {
 public:
  double estimate() const { return std::pow(2.0, c_) - 1.0; }
  bool increment(Rng& rng) {
    if (rng.next_bernoulli(std::pow(2.0, -c_))) {
      c_ += 1.0;
      return true;
    }
    return false;
  }

 private:
  double c_ = 0.0;
};

// Steele-Tristan style: value V increments by 2^floor(log2(V+1)) with the
// reciprocal probability — constant relative accuracy, update probability
// ~1/V (more frequent writes than the paper's log(n)/(beta V) for V < n).
class SteeleCounter {
 public:
  double estimate() const { return v_; }
  bool increment(Rng& rng) {
    const double step = std::pow(2.0, std::floor(std::log2(v_ + 1.0)));
    if (rng.next_bernoulli(1.0 / step)) {
      v_ += step;
      return true;
    }
    return false;
  }

 private:
  double v_ = 0.0;
};

}  // namespace pimkd::core
