# Empty compiler generated dependencies file for test_logtree.
# This may be replaced when dependencies are built.
