// SIMD kernel equivalence (util/kernels.hpp, DESIGN.md §11).
//
// The library's contract is that the dispatch decision is *unobservable*
// except in wall-clock: forced-scalar and forced-AVX2 runs produce
// bit-identical query results, identical cost-ledger snapshots, byte-equal
// JSONL traces, and equal checkpoint hashes. This suite checks that at three
// levels:
//   1. kernel level — leaf_sq_dists / leaf_contains scalar vs AVX2, bitwise,
//      sweeping dim 1..16 and leaf sizes around the lane-width boundaries,
//      with duplicates, exact ties, and unaligned base offsets;
//   2. tree level — the same seeded workload under cfg.simd="off" vs "avx2":
//      knn/range/radius/1-NN results, ledger, and Checkpoint::hash equal;
//   3. process level — this binary re-executes itself under
//      PIMKD_SIMD ∈ {off, avx2} × PIMKD_THREADS ∈ {1, 4, 8} and requires all
//      six outputs and traces byte-identical (custom main, like
//      test_determinism).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/pim_kdtree.hpp"
#include "durability/checkpoint.hpp"
#include "util/generators.hpp"
#include "util/kernels.hpp"
#include "util/random.hpp"

namespace {

using namespace pimkd;
using namespace pimkd::core;
namespace kn = pimkd::kernels;

bool have_avx2() { return kn::cpu_supports_avx2(); }

// Leaf sizes around the lane-width boundaries: 0, 1, w-1, w, w+1, 2w, and a
// couple of kScanChunk-straddling sizes.
const std::uint32_t kCounts[] = {0,  1,  kn::kLaneWidth - 1,
                                 kn::kLaneWidth, kn::kLaneWidth + 1,
                                 2 * kn::kLaneWidth, 17,
                                 kn::kScanChunk - 1, kn::kScanChunk,
                                 kn::kScanChunk + 5};

// A leaf payload with duplicates and exact single-coordinate ties baked in.
kn::LeafSoa make_soa(std::uint32_t count, int dim, std::uint64_t seed,
                     std::vector<Point>* pts_out = nullptr) {
  Rng rng(seed);
  std::vector<Point> pts(count);
  for (std::uint32_t i = 0; i < count; ++i)
    for (int d = 0; d < dim; ++d)
      pts[i][d] = rng.next_double(-1.0, 1.0);
  // Duplicates: every 5th point repeats its predecessor exactly.
  for (std::uint32_t i = 1; i < count; ++i)
    if (i % 5 == 0) pts[i] = pts[i - 1];
  // Exact per-coordinate ties without full duplication.
  for (std::uint32_t i = 2; i < count; ++i)
    if (i % 7 == 0) pts[i][0] = pts[i - 2][0];
  kn::LeafSoa soa;
  soa.reset(count, dim);
  for (std::uint32_t i = 0; i < count; ++i) soa.set(i, pts[i].x.data(), dim);
  if (pts_out) *pts_out = std::move(pts);
  return soa;
}

TEST(SimdKernels, LeafSqDistsBitIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "CPU/toolchain lacks AVX2";
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    for (const std::uint32_t count : kCounts) {
      std::vector<Point> pts;
      const kn::LeafSoa soa =
          make_soa(count, dim, 77 * dim + count, &pts);
      Rng rng(13 * dim + count);
      Point q;
      for (int d = 0; d < dim; ++d) q[d] = rng.next_double(-1.0, 1.0);
      const std::uint32_t padded =
          (count + kn::kLaneWidth - 1) / kn::kLaneWidth * kn::kLaneWidth;
      std::vector<double> a(padded + 1, -1), b(padded + 1, -1);
      // Query at a random position, then at an exact data point (distance 0
      // must come out exactly 0 on both paths).
      for (int pass = 0; pass < 2; ++pass) {
        if (pass == 1) {
          if (count == 0) break;
          q = pts[count / 2];
        }
        kn::leaf_sq_dists(kn::Isa::kScalar, soa, 0, count, q.x.data(), dim,
                          a.data());
        kn::leaf_sq_dists(kn::Isa::kAvx2, soa, 0, count, q.x.data(), dim,
                          b.data());
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), count * sizeof(double)))
            << "dim=" << dim << " count=" << count << " pass=" << pass;
        if (pass == 1)
          EXPECT_EQ(a[count / 2], 0.0) << "self-distance must be exactly 0";
      }
    }
  }
}

TEST(SimdKernels, LeafContainsBitIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "CPU/toolchain lacks AVX2";
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    for (const std::uint32_t count : kCounts) {
      std::vector<Point> pts;
      const kn::LeafSoa soa =
          make_soa(count, dim, 910 * dim + count, &pts);
      Rng rng(3 * dim + count);
      const std::uint32_t padded =
          (count + kn::kLaneWidth - 1) / kn::kLaneWidth * kn::kLaneWidth;
      // Boxes: random; degenerate (lo == hi == an actual point, so the
      // boundary-inclusive compare matters); whole; empty (inverted bounds).
      std::vector<Box> boxes;
      Box rb;
      for (int d = 0; d < dim; ++d) {
        const double x = rng.next_double(-1.0, 1.0);
        const double y = rng.next_double(-1.0, 1.0);
        rb.lo[d] = std::min(x, y);
        rb.hi[d] = std::max(x, y);
      }
      boxes.push_back(rb);
      if (count > 0) {
        Box degenerate;
        degenerate.lo = degenerate.hi = pts[count / 2];
        boxes.push_back(degenerate);
      }
      boxes.push_back(Box::whole(dim));
      boxes.push_back(Box::empty(dim));
      for (const Box& box : boxes) {
        std::vector<std::uint8_t> a(padded + 1, 0xcc), b(padded + 1, 0xcc);
        kn::leaf_contains(kn::Isa::kScalar, soa, 0, count, box.lo.x.data(),
                          box.hi.x.data(), dim, a.data());
        kn::leaf_contains(kn::Isa::kAvx2, soa, 0, count, box.lo.x.data(),
                          box.hi.x.data(), dim, b.data());
        ASSERT_EQ(0, std::memcmp(a.data(), b.data(), count))
            << "dim=" << dim << " count=" << count;
        // Cross-check against the scalar single-definition on the AoS side.
        for (std::uint32_t i = 0; i < count; ++i)
          ASSERT_EQ(a[i] != 0, box.contains(pts[i], dim));
      }
    }
  }
}

// The PriorityKdTree reads arbitrary [begin, begin+count) slices of one
// global SoA — lane bases are NOT aligned there. The kernels must agree on
// every offset.
TEST(SimdKernels, UnalignedBaseSlices) {
  if (!have_avx2()) GTEST_SKIP() << "CPU/toolchain lacks AVX2";
  const int dim = 5;
  const std::uint32_t n = 64;
  kn::LeafSoa soa = make_soa(n + kn::kLaneWidth, dim, 42);
  soa.n = n;  // extra pad lane, PriorityKdTree-style
  Rng rng(7);
  Point q;
  for (int d = 0; d < dim; ++d) q[d] = rng.next_double(-1.0, 1.0);
  for (std::uint32_t base = 0; base < 8; ++base) {
    for (const std::uint32_t count : {1u, 3u, 4u, 5u, 9u, 32u}) {
      double a[64], b[64];
      kn::leaf_sq_dists(kn::Isa::kScalar, soa, base, count, q.x.data(), dim,
                        a);
      kn::leaf_sq_dists(kn::Isa::kAvx2, soa, base, count, q.x.data(), dim, b);
      ASSERT_EQ(0, std::memcmp(a, b, count * sizeof(double)))
          << "base=" << base << " count=" << count;
    }
  }
}

// The branch-free point-box distance is value-identical to the classic
// branchy clamp for every non-NaN input, including the ±inf bounds of
// Box::whole and the inverted bounds of Box::empty.
TEST(SimdKernels, BoxDistMatchesBranchyReference) {
  auto branchy = [](const Box& b, const Point& p, int dim) {
    double s = 0;
    for (int d = 0; d < dim; ++d) {
      double v = p[d];
      if (v < b.lo[d]) v = b.lo[d];
      if (v > b.hi[d]) v = b.hi[d];
      const double diff = p[d] - v;
      s += diff * diff;
    }
    return s;
  };
  Rng rng(99);
  for (int dim = 1; dim <= kMaxDim; ++dim) {
    for (int it = 0; it < 200; ++it) {
      Box b;
      Point p;
      for (int d = 0; d < dim; ++d) {
        const double x = rng.next_double(-2.0, 2.0);
        const double y = rng.next_double(-2.0, 2.0);
        b.lo[d] = std::min(x, y);
        b.hi[d] = std::max(x, y);
        p[d] = rng.next_double(-3.0, 3.0);
      }
      if (it % 4 == 0) p[0] = b.lo[0];  // exactly on a face
      ASSERT_EQ(b.sq_dist_to(p, dim), branchy(b, p, dim));
    }
    Point p;
    for (int d = 0; d < dim; ++d) p[d] = rng.next_double(-1.0, 1.0);
    EXPECT_EQ(Box::whole(dim).sq_dist_to(p, dim), 0.0);
    EXPECT_EQ(Box::empty(dim).sq_dist_to(p, dim),
              std::numeric_limits<double>::infinity());
  }
}

TEST(SimdConfig, InvalidRequestsRejected) {
  EXPECT_THROW(kn::parse_request("avx512"), std::invalid_argument);
  EXPECT_THROW(kn::parse_request("ON"), std::invalid_argument);
  EXPECT_FALSE(kn::valid_request("scalar"));
  EXPECT_TRUE(kn::valid_request(""));
  EXPECT_TRUE(kn::valid_request("off"));
  EXPECT_TRUE(kn::valid_request("avx2"));
  EXPECT_TRUE(kn::valid_request("auto"));
  PimKdConfig cfg;
  cfg.simd = "sse4";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.simd = "off";
  EXPECT_NO_THROW(cfg.validate());
}

// "avx2" on unsupported hardware degrades to scalar (logged), never fails.
TEST(SimdConfig, ResolveDegradesGracefully) {
  const kn::Isa got = kn::resolve(kn::Request::kAvx2);
  if (have_avx2())
    EXPECT_EQ(got, kn::Isa::kAvx2);
  else
    EXPECT_EQ(got, kn::Isa::kScalar);
  EXPECT_EQ(kn::resolve(kn::Request::kOff), kn::Isa::kScalar);
}

// --- Tree-level equivalence ---------------------------------------------------

struct WorkloadResult {
  std::vector<std::vector<Neighbor>> knn;
  std::vector<std::vector<PointId>> range;
  std::vector<std::vector<PointId>> radius;
  std::vector<std::size_t> radius_count;
  std::vector<Neighbor> dep;
  pim::Snapshot snap;
  std::uint64_t ckpt_hash = 0;
};

WorkloadResult run_workload(const std::string& simd, int dim,
                            std::size_t leaf_cap) {
  PimKdConfig cfg;
  cfg.dim = dim;
  cfg.leaf_cap = leaf_cap;
  cfg.simd = simd;
  cfg.system.num_modules = 16;
  cfg.system.cache_words = 1 << 22;
  cfg.system.seed = 4242;

  const auto pts = gen_uniform({.n = 3000, .dim = dim, .seed = 5});
  PimKdTree tree(cfg, std::span<const Point>(pts.data(), 2500));
  (void)tree.insert(std::span<const Point>(pts.data() + 2500, 500));
  std::vector<PointId> dead;
  for (PointId i = 0; i < 900; i += 4) dead.push_back(i);
  tree.erase(dead);

  std::vector<Point> qs(pts.begin(), pts.begin() + 128);
  std::vector<Box> boxes;
  for (std::size_t i = 0; i < 64; ++i) {
    Box b;
    for (int d = 0; d < dim; ++d) {
      b.lo[d] = qs[i][d] - 0.08;
      b.hi[d] = qs[i][d] + 0.08;
    }
    boxes.push_back(b);
  }
  std::vector<double> prio(tree.next_point_id());
  for (std::size_t i = 0; i < prio.size(); ++i)
    prio[i] = static_cast<double>((i * 2654435761ull) % 4093);
  tree.set_priorities(prio);
  std::vector<double> qprio(qs.size());
  std::vector<PointId> self(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qprio[i] = prio[i];
    self[i] = static_cast<PointId>(i);
  }

  WorkloadResult r;
  r.knn = tree.knn(qs, 6);
  r.range = tree.range(boxes);
  r.radius = tree.radius(qs, 0.07);
  r.radius_count = tree.radius_count(qs, 0.05);
  r.dep = tree.dependent_points(qs, qprio, self);
  r.snap = tree.metrics().snapshot();
  r.ckpt_hash = durability::Checkpoint::hash(tree);
  EXPECT_TRUE(tree.check_invariants());
  return r;
}

void expect_equal(const WorkloadResult& a, const WorkloadResult& b) {
  ASSERT_EQ(a.knn.size(), b.knn.size());
  for (std::size_t i = 0; i < a.knn.size(); ++i) {
    ASSERT_EQ(a.knn[i].size(), b.knn[i].size()) << i;
    for (std::size_t j = 0; j < a.knn[i].size(); ++j) {
      EXPECT_EQ(a.knn[i][j].id, b.knn[i][j].id);
      // Bitwise, not approximate: the whole point of the kernel contract.
      EXPECT_EQ(0, std::memcmp(&a.knn[i][j].sq_dist, &b.knn[i][j].sq_dist,
                               sizeof(double)));
    }
  }
  EXPECT_EQ(a.range, b.range);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_EQ(a.radius_count, b.radius_count);
  ASSERT_EQ(a.dep.size(), b.dep.size());
  for (std::size_t i = 0; i < a.dep.size(); ++i) {
    EXPECT_EQ(a.dep[i].id, b.dep[i].id);
    EXPECT_EQ(0, std::memcmp(&a.dep[i].sq_dist, &b.dep[i].sq_dist,
                             sizeof(double)));
  }
  EXPECT_EQ(a.snap.cpu_work, b.snap.cpu_work);
  EXPECT_EQ(a.snap.pim_work, b.snap.pim_work);
  EXPECT_EQ(a.snap.communication, b.snap.communication);
  EXPECT_EQ(a.snap.rounds, b.snap.rounds);
  EXPECT_EQ(a.ckpt_hash, b.ckpt_hash);
}

TEST(SimdEquivalence, ForcedScalarVsForcedAvx2) {
  if (!have_avx2()) GTEST_SKIP() << "CPU/toolchain lacks AVX2";
  // leaf_cap around the lane width: w-1, w, w+1, 2w, and the default.
  for (const std::size_t leaf_cap :
       {kn::kLaneWidth - 1, kn::kLaneWidth, kn::kLaneWidth + 1,
        2 * kn::kLaneWidth, std::uint32_t{16}}) {
    for (const int dim : {1, 2, 3, 7, 16}) {
      const WorkloadResult off = run_workload("off", dim, leaf_cap);
      const WorkloadResult avx = run_workload("avx2", dim, leaf_cap);
      expect_equal(off, avx);
    }
  }
}

// --- Process-level matrix: PIMKD_SIMD × PIMKD_THREADS -------------------------

std::string self_exe() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

std::string run_child(const std::string& exe, const std::string& simd,
                      int threads, const std::string& trace_path) {
  const std::string cmd = "PIMKD_SIMD=" + simd +
                          " PIMKD_THREADS=" + std::to_string(threads) + " '" +
                          exe + "' --simd-child '" + trace_path + "'";
  std::FILE* p = popen(cmd.c_str(), "r");
  if (!p) return {};
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof buf, p)) out += buf;
  const int rc = pclose(p);
  EXPECT_EQ(rc, 0) << "child failed: " << cmd;
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(SimdEquivalence, SubprocessMatrixByteIdentical) {
  if (!have_avx2()) GTEST_SKIP() << "CPU/toolchain lacks AVX2";
  const std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  const std::string dir = ::testing::TempDir();
  std::string ref_out;
  std::string ref_trace;
  for (const char* simd : {"off", "avx2"}) {
    for (const int threads : {1, 4, 8}) {
      const std::string trace = dir + "pimkd_simd_" + simd + "_t" +
                                std::to_string(threads) + ".jsonl";
      const std::string out = run_child(exe, simd, threads, trace);
      ASSERT_FALSE(out.empty());
      const std::string tr = slurp(trace);
      ASSERT_FALSE(tr.empty());
      if (ref_out.empty()) {
        ref_out = out;
        ref_trace = tr;
      } else {
        EXPECT_EQ(out, ref_out)
            << "output diverged at simd=" << simd << " threads=" << threads;
        EXPECT_EQ(tr, ref_trace)
            << "trace diverged at simd=" << simd << " threads=" << threads;
      }
      std::remove(trace.c_str());
    }
  }
}

// Child workload: build + insert + erase + the full read mix; prints result
// hashes, the ledger aggregates, and the checkpoint hash. Everything printed
// must be identical across the whole PIMKD_SIMD × PIMKD_THREADS matrix.
int simd_child(const char* trace_path) {
  PimKdConfig cfg;
  cfg.dim = 3;
  cfg.leaf_cap = 8;
  cfg.system.num_modules = 32;
  cfg.system.cache_words = 1 << 22;
  cfg.system.seed = 1234;
  cfg.trace_path = trace_path;

  const auto pts = gen_uniform({.n = 8000, .dim = 3, .seed = 21});
  PimKdTree tree(cfg, std::span<const Point>(pts.data(), 7000));
  (void)tree.insert(std::span<const Point>(pts.data() + 7000, 1000));
  std::vector<PointId> dead;
  for (PointId i = 0; i < 2400; i += 3) dead.push_back(i);
  tree.erase(dead);

  std::vector<Point> qs(pts.begin(), pts.begin() + 192);
  std::uint64_t qh = 0;
  auto fold_bits = [&qh](double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    qh = qh * 1000003u + bits;
  };
  for (const auto& v : tree.knn(qs, 8))
    for (const auto& nb : v) {
      qh = qh * 1000003u + nb.id;
      fold_bits(nb.sq_dist);
    }
  std::vector<Box> boxes;
  for (std::size_t i = 0; i < 96; ++i) {
    Box b;
    for (int d = 0; d < 3; ++d) {
      b.lo[d] = qs[i][d] - 0.06;
      b.hi[d] = qs[i][d] + 0.06;
    }
    boxes.push_back(b);
  }
  for (const auto& v : tree.range(boxes))
    for (const PointId id : v) qh = qh * 1000003u + id;
  for (const auto& v : tree.radius(qs, 0.08))
    for (const PointId id : v) qh = qh * 1000003u + id;
  for (const auto c : tree.radius_count(qs, 0.05)) qh = qh * 31 + c;
  std::vector<double> prio(tree.next_point_id());
  for (std::size_t i = 0; i < prio.size(); ++i)
    prio[i] = static_cast<double>((i * 2654435761ull) % 99991);
  tree.set_priorities(prio);
  std::vector<double> qprio(qs.size());
  std::vector<PointId> self(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    qprio[i] = prio[i];
    self[i] = static_cast<PointId>(i);
  }
  for (const auto& nb : tree.dependent_points(qs, qprio, self)) {
    qh = qh * 1000003u + nb.id;
    if (nb.id != kInvalidPoint) fold_bits(nb.sq_dist);
  }

  const auto s = tree.metrics().snapshot();
  std::printf("qh=%llu cpu=%llu pim_work=%llu comm=%llu rounds=%llu "
              "ckpt=%llu inv=%d\n",
              (unsigned long long)qh, (unsigned long long)s.cpu_work,
              (unsigned long long)s.pim_work,
              (unsigned long long)s.communication,
              (unsigned long long)s.rounds,
              (unsigned long long)durability::Checkpoint::hash(tree),
              tree.check_invariants() ? 1 : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--simd-child")
    return simd_child(argc >= 3 ? argv[2] : "");
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
