file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dbscan.dir/bench_table1_dbscan.cpp.o"
  "CMakeFiles/bench_table1_dbscan.dir/bench_table1_dbscan.cpp.o.d"
  "bench_table1_dbscan"
  "bench_table1_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
