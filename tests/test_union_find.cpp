#include "clustering/union_find.hpp"

#include <gtest/gtest.h>

#include "clustering/connectivity.hpp"
#include "parallel/primitives.hpp"
#include "util/random.hpp"

namespace pimkd {
namespace {

TEST(UnionFind, BasicMerges) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.same(0, 1));
  EXPECT_FALSE(uf.same(1, 2));
  EXPECT_TRUE(uf.unite(1, 3));
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 5));
}

TEST(UnionFind, ChainMerge) {
  UnionFind uf(1000);
  for (std::size_t i = 0; i + 1 < 1000; ++i) uf.unite(i, i + 1);
  EXPECT_TRUE(uf.same(0, 999));
}

TEST(AtomicUnionFind, SequentialAgreesWithPlain) {
  Rng rng(1);
  UnionFind a(500);
  AtomicUnionFind b(500);
  for (int t = 0; t < 800; ++t) {
    const auto x = static_cast<std::size_t>(rng.next_below(500));
    const auto y = static_cast<std::size_t>(rng.next_below(500));
    a.unite(x, y);
    b.unite(x, y);
  }
  for (std::size_t i = 0; i < 500; ++i)
    for (const std::size_t j : {0ul, 123ul, 499ul})
      EXPECT_EQ(a.same(i, j), b.find(i) == b.find(j));
}

TEST(AtomicUnionFind, ConcurrentUnites) {
  AtomicUnionFind uf(10000);
  parallel_for(0, 9999, [&](std::size_t i) { uf.unite(i, i + 1); }, 64);
  const std::size_t root = uf.find(0);
  for (const std::size_t i : {1ul, 5000ul, 9999ul})
    EXPECT_EQ(uf.find(i), root);
}

TEST(Connectivity, LabelsComponents) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {4, 5}};
  const auto c = connected_components(7, edges);
  EXPECT_EQ(c.count, 4u);  // {0,1,2}, {3}, {4,5}, {6}
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[4], c.label[5]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[3], c.label[6]);
}

TEST(Connectivity, EmptyGraph) {
  const auto c = connected_components(4, {});
  EXPECT_EQ(c.count, 4u);
}

TEST(Connectivity, LabelsAreNormalized) {
  const std::vector<Edge> edges = {{8, 9}, {0, 1}};
  const auto c = connected_components(10, edges);
  for (const auto l : c.label) EXPECT_LT(l, c.count);
  // Labels appear in vertex order: vertex 0's component gets label 0.
  EXPECT_EQ(c.label[0], 0u);
}

TEST(Connectivity, PimVariantSameResultAndCharges) {
  Rng rng(2);
  std::vector<Edge> edges;
  for (int t = 0; t < 3000; ++t)
    edges.emplace_back(static_cast<std::uint32_t>(rng.next_below(2000)),
                       static_cast<std::uint32_t>(rng.next_below(2000)));
  const auto plain = connected_components(2000, edges);
  pim::Metrics metrics(16, 1 << 20);
  const auto pim_res = pim_connected_components(2000, edges, metrics);
  EXPECT_EQ(plain.count, pim_res.count);
  EXPECT_EQ(plain.label, pim_res.label);
  const auto s = metrics.snapshot();
  EXPECT_EQ(s.communication, 2 * edges.size());
  EXPECT_GT(s.pim_work, 0u);
  // Hash placement keeps per-module communication balanced.
  EXPECT_LT(metrics.comm_balance().imbalance, 2.0);
}

}  // namespace
}  // namespace pimkd
