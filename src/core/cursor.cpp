#include "core/cursor.hpp"

#include <cassert>

namespace pimkd::core {

namespace {
bool group_is_cached(const PimKdConfig& cfg, int group) {
  if (group == 0) return cfg.replicate_group0 && cfg.cached_groups != 0;
  if (cfg.cached_groups < 0) return true;
  return group < cfg.cached_groups;
}
}  // namespace

Cursor::Cursor(const PimKdConfig& cfg, const NodePool& pool,
               const DistStore& store, pim::Metrics& metrics,
               std::size_t start_module)
    : cfg_(cfg), pool_(pool), store_(store), metrics_(metrics) {
  stack_.push_back(Anchor{kNoNode, start_module});
}

bool Cursor::is_comp_related(NodeId id, NodeId anchor) const {
  const NodeRec& u = pool_.at(id);
  const NodeRec& a = pool_.at(anchor);
  if (u.comp_root != a.comp_root) return false;
  const NodeRec& croot = pool_.at(u.comp_root);
  if (!croot.comp_finished) return false;  // delayed construction pending
  if (!group_is_cached(cfg_, u.group)) return false;
  if (u.depth >= a.depth) {
    // Candidate descendant: readable from a's top-down cache.
    if (cfg_.caching != CachingMode::kTopDown &&
        cfg_.caching != CachingMode::kDual)
      return false;
    NodeId cur = id;
    for (std::uint32_t d = u.depth; d > a.depth; --d) cur = pool_.at(cur).parent;
    return cur == anchor;
  }
  // Candidate ancestor: readable from a's bottom-up chain.
  if (cfg_.caching != CachingMode::kBottomUp &&
      cfg_.caching != CachingMode::kDual)
    return false;
  NodeId cur = anchor;
  for (std::uint32_t d = a.depth; d > u.depth; --d) cur = pool_.at(cur).parent;
  return cur == id;
}

bool Cursor::is_local(NodeId id) const {
  const NodeRec& u = pool_.at(id);
  if (u.group == 0 && group_is_cached(cfg_, 0)) return true;
  const Anchor& top = stack_.back();
  if (top.node == kNoNode) return false;  // group-0 base anchor
  if (id == top.node) return true;
  return is_comp_related(id, top.node);
}

bool Cursor::can_visit(NodeId id) const {
  if (!store_.any_module_dead()) return true;
  if (is_local(id)) return store_.module_alive(stack_.back().module);
  return store_.module_alive(store_.master_of(id));
}

bool Cursor::visit(NodeId id) {
  if (is_local(id)) {
    const std::size_t m = stack_.back().module;
    assert(store_.module_has(m, id));
    metrics_.add_module_work(m, 1);
    return false;
  }
  const std::size_t from = stack_.back().module;
  const std::size_t to = store_.master_of(id);
  assert(store_.module_has(to, id));
  metrics_.add_comm(from, kHopWords / 2);
  metrics_.add_comm(to, kHopWords - kHopWords / 2);
  metrics_.add_module_work(to, 1);
  // Every off-component hop lands on the component entry point, so the hop
  // count per component root is exactly the read heat the migration planner
  // needs (no-op unless heat tracking is enabled).
  store_.note_hop(pool_.at(id).comp_root);
  stack_.push_back(Anchor{id, to});
  ++hops_;
  return true;
}

void Cursor::release(std::size_t mark) {
  assert(mark >= 1 && mark <= stack_.size());
  stack_.resize(mark);
}

void Cursor::charge_work(std::uint64_t units) {
  metrics_.add_module_work(stack_.back().module, units);
}

std::size_t Cursor::current_module() const { return stack_.back().module; }

}  // namespace pimkd::core
