#include "parallel/primitives.hpp"

#include <unordered_map>

namespace pimkd {

std::uint64_t exclusive_scan(std::vector<std::uint64_t>& v) {
  const std::size_t n = v.size();
  if (n == 0) return 0;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t chunks =
      std::min<std::size_t>(std::max<std::size_t>(pool.size(), 1), 64);
  if (n < 8192 || chunks <= 1) {
    std::uint64_t acc = 0;
    for (auto& x : v) {
      const std::uint64_t cur = x;
      x = acc;
      acc += cur;
    }
    return acc;
  }
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::uint64_t> sums(chunks, 0);
  pool.run_bulk(chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, n);
    std::uint64_t acc = 0;
    for (std::size_t i = lo; i < hi; ++i) acc += v[i];
    sums[c] = acc;
  });
  std::uint64_t total = 0;
  for (auto& s : sums) {
    const std::uint64_t cur = s;
    s = total;
    total += cur;
  }
  pool.run_bulk(chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, n);
    std::uint64_t acc = sums[c];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint64_t cur = v[i];
      v[i] = acc;
      acc += cur;
    }
  });
  return total;
}

GroupBy group_by(const std::vector<std::uint64_t>& keys) {
  // Hash-based semisort. The paper's semisort [30] achieves linear work whp;
  // a bucketed hash grouping has the same asymptotics for our purposes.
  GroupBy out;
  const std::size_t n = keys.size();
  std::unordered_map<std::uint64_t, std::size_t> group_of;
  group_of.reserve(n * 2);
  std::vector<std::size_t> counts;
  std::vector<std::size_t> gid(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto [it, fresh] = group_of.try_emplace(keys[i], out.keys.size());
    if (fresh) {
      out.keys.push_back(keys[i]);
      counts.push_back(0);
    }
    gid[i] = it->second;
    ++counts[it->second];
  }
  const std::size_t g = out.keys.size();
  out.offsets.assign(g + 1, 0);
  for (std::size_t j = 0; j < g; ++j) out.offsets[j + 1] = out.offsets[j] + counts[j];
  out.perm.resize(n);
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) out.perm[cursor[gid[i]]++] = i;
  return out;
}

}  // namespace pimkd
