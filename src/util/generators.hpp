// Synthetic datasets and query workloads.
//
// The paper's bounds are distribution-free except for kNN (which assumes a
// "kNN-friendly" dataset, Definition 2 — locally uniform density), and the
// load-balance claims which must hold under *adversarial* skew. We therefore
// provide: uniform cubes and Gaussian mixtures (kNN-friendly in practice),
// and adversarial generators that aim every query at one tiny region of
// space, the workload used to stress push-pull search (Lemma 3.8).
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"
#include "util/random.hpp"

namespace pimkd {

struct DatasetSpec {
  std::size_t n = 0;
  int dim = 2;
  std::uint64_t seed = 1;
};

// n points uniform in [0, extent)^dim.
std::vector<Point> gen_uniform(const DatasetSpec& spec, Coord extent = 1.0);

// Gaussian mixture: `clusters` centers uniform in the cube, points normal
// around a random center with the given per-axis stddev.
std::vector<Point> gen_gaussian_blobs(const DatasetSpec& spec,
                                      std::size_t clusters,
                                      Coord stddev,
                                      Coord extent = 1.0);

// Mixture of blobs plus a fraction of uniform "noise" points (for DBSCAN).
std::vector<Point> gen_blobs_with_noise(const DatasetSpec& spec,
                                        std::size_t clusters, Coord stddev,
                                        double noise_fraction,
                                        Coord extent = 1.0);

// Points on a near-degenerate varimax line with small jitter — stresses the
// widest-dimension split rule and produces deep skewed recursion in naive
// builders.
std::vector<Point> gen_line(const DatasetSpec& spec, Coord jitter);

// Zipf-distributed choice over [0, n): rank r picked with weight r^-theta.
class ZipfPicker {
 public:
  ZipfPicker(std::size_t n, double theta, std::uint64_t seed);
  std::size_t pick(Rng& rng) const;

 private:
  std::vector<double> cdf_;
  std::vector<std::size_t> perm_;  // random rank -> index permutation
};

// Query workloads -----------------------------------------------------------

// S queries uniform over the data's bounding box.
std::vector<Point> gen_uniform_queries(std::span<const Point> data, int dim,
                                       std::size_t s, std::uint64_t seed);

// S queries, each a small perturbation of a data point chosen by a Zipf
// distribution — realistic skew (hot regions).
std::vector<Point> gen_zipf_queries(std::span<const Point> data, int dim,
                                    std::size_t s, double theta,
                                    std::uint64_t seed);

// Adversarial batch: every query is a jitter of the *same* data point, so a
// partition-by-subtree design would route the whole batch to one module.
std::vector<Point> gen_adversarial_queries(std::span<const Point> data,
                                           int dim, std::size_t s,
                                           std::uint64_t seed);

}  // namespace pimkd
