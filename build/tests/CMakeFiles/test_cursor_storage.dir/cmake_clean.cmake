file(REMOVE_RECURSE
  "CMakeFiles/test_cursor_storage.dir/test_cursor_storage.cpp.o"
  "CMakeFiles/test_cursor_storage.dir/test_cursor_storage.cpp.o.d"
  "test_cursor_storage"
  "test_cursor_storage.pdb"
  "test_cursor_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cursor_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
