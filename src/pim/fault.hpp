// Deterministic, seeded fault injection for the simulated PIM system.
//
// Real PIM hardware (UPMEM-class) exhibits module crashes, transient stalls
// and lost transfers; the simulator reproduces them as *scheduled events at
// BSP-round barriers* so every faulty run is exactly replayable from (seed,
// plan). Three round-barrier fault kinds:
//   * crash  — the module's local state is wiped and it is marked dead until
//              explicitly recovered (PimKdTree::recover). Messages addressed
//              to a dead module are suppressed by the orchestrator.
//   * stall  — the module charges `arg` extra units of work in that round,
//              modelling a transient slowdown that stretches the round's
//              PIM time.
//   * lose   — from that round on, each counter-sync word sent to the module
//              is dropped with probability arg/1000 (replica goes stale; the
//              canonical host-side value is unaffected). arg = 0 clears the
//              loss rate. Drops draw from the injector's private RNG on the
//              control thread only, so the drop sequence is deterministic.
// Plus one *durability* fault kind that fires on write-ahead-log appends
// instead of round barriers (src/durability/wal.cpp consumes it):
//   * torn   — the WAL write that would cover byte offset N of the log file
//              is cut short at N (default) or lands with the bit at N
//              flipped ("torn@N:flip"), simulating a crash mid-append /
//              sector corruption. Fires once; recovery must truncate.
//
// Plans are written as a ';'-separated event list, e.g.
//   PIMKD_FAULTS="crash@12:m3;stall@20:m1:5000;lose@8:m2:250;torn@4096"
// (kind@round:mMODULE[:ARG], torn@BYTE[:cut|:flip]) and parse into a
// FaultPlan. The plan is applied by PimSystem at the beginning of the
// matching Metrics round; events for rounds that never run simply do not
// fire. Malformed tokens are a structured error: try_parse returns a Status
// naming the offending token (parse throws the same message as
// std::invalid_argument), and validate_modules rejects events aimed past the
// system's module count — PimSystem applies that check to explicit
// SystemConfig::fault_spec plans (a PIMKD_FAULTS env plan targets every tree
// in the process, so out-of-range events there are inert per tree by design).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pim/status.hpp"
#include "util/random.hpp"

namespace pimkd::pim {

enum class FaultKind {
  kModuleCrash,
  kStall,
  kMessageLoss,
  kTornTail,
};

const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  std::uint64_t round = 0;  // BSP round (Metrics round sequence) at whose
                            // begin-barrier the event fires; for kTornTail:
                            // the WAL byte offset the tear lands on
  FaultKind kind = FaultKind::kModuleCrash;
  std::size_t module = 0;   // unused (0) for kTornTail
  std::uint64_t arg = 0;    // stall: extra work units; lose: permille rate;
                            // torn: 0 = cut short at the offset, 1 = flip a
                            // bit at the offset

  bool operator==(const FaultEvent&) const = default;

  // The parse() token form ("crash@12:m3", "torn@4096:flip", ...).
  std::string to_string() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Parses the "kind@round:mMODULE[:ARG]" / "torn@BYTE[:cut|:flip]" ';'-list
  // format into `out` (cleared first). On malformed input returns
  // kInvalidArgument naming the offending token; `out` is left empty.
  static Status try_parse(const std::string& spec, FaultPlan& out);

  // try_parse, throwing std::invalid_argument with the Status message.
  static FaultPlan parse(const std::string& spec);

  // `spec` if non-empty, else the PIMKD_FAULTS environment variable, else an
  // empty plan. Throws like parse().
  static FaultPlan resolve(const std::string& spec);

  // kInvalidArgument naming the first event whose module index is >=
  // num_modules (such an event could never fire and was historically ignored
  // silently). kTornTail events carry no module and always pass.
  Status validate_modules(std::size_t num_modules) const;

  // Re-serializes to the parse() format (round-trips).
  std::string to_string() const;
};

// Holds the plan plus the per-module message-loss state; owned by PimSystem
// and consulted at round barriers (events), on counter-sync sends (drops) and
// on WAL appends (torn tails).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed, std::size_t num_modules);

  // All round-barrier events scheduled for `round`, in plan order. Consumes
  // them: each event fires at most once. Never returns kTornTail events
  // (those fire on WAL appends via take_torn).
  std::vector<FaultEvent> take_events(std::uint64_t round);

  // Durability hook: the next unfired kTornTail event whose byte offset is
  // below `end` (the WAL size the current append would reach). Consumes it.
  // Returns false when no torn event is due.
  bool take_torn(std::uint64_t end, FaultEvent& ev);
  std::size_t pending_torn() const { return torn_.size() - torn_next_; }

  // Message-loss draw for one counter-sync word to `module`. Control-thread
  // only (the draw sequence is part of the deterministic trace).
  bool drop_counter_word(std::size_t module);

  void set_loss_permille(std::size_t module, std::uint64_t permille);
  std::uint64_t loss_permille(std::size_t module) const {
    return loss_permille_[module];
  }
  bool any_loss_active() const { return active_loss_modules_ > 0; }
  std::uint64_t dropped_words() const { return dropped_; }
  std::size_t pending_events() const { return events_.size() - next_; }

 private:
  std::vector<FaultEvent> events_;  // round events, stably sorted by round
  std::size_t next_ = 0;
  std::vector<FaultEvent> torn_;    // kTornTail events, sorted by offset
  std::size_t torn_next_ = 0;
  std::vector<std::uint64_t> loss_permille_;
  std::size_t active_loss_modules_ = 0;
  Rng rng_;
  std::uint64_t dropped_ = 0;
};

}  // namespace pimkd::pim
