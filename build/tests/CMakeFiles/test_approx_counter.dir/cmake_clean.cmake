file(REMOVE_RECURSE
  "CMakeFiles/test_approx_counter.dir/test_approx_counter.cpp.o"
  "CMakeFiles/test_approx_counter.dir/test_approx_counter.cpp.o.d"
  "test_approx_counter"
  "test_approx_counter.pdb"
  "test_approx_counter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
