// A small blocking thread pool modelling the paper's multicore host CPU.
//
// The PIM Model analyses host computation in the binary-forking model with a
// work-stealing scheduler; for execution we use a fixed pool with bulk task
// submission (parallel_for grain scheduling), which preserves the work bounds
// and is far simpler. The pool is a process-wide singleton sized from
// hardware_concurrency, overridable for tests via PIMKD_THREADS.
//
// Dispatch path: run_bulk publishes ONE heap-allocated Bulk descriptor per
// call (the chunk function is referenced, never copied) onto a deque; workers
// and the calling thread claim chunk indices from it with a single fetch_add
// each. No per-chunk or per-worker std::function allocations happen on the
// submission path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pimkd {

class ThreadPool {
 public:
  // `ledger_slots` grants each worker a stable 1-based slot id (read back via
  // ledger_slot()) used by pim::Metrics for contention-free sharded charging.
  // Only the process-wide singleton enables it; ad-hoc pools charge through
  // the shared slot 0 like any foreign thread.
  explicit ThreadPool(std::size_t threads, bool ledger_slots = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(chunk_index) for chunk_index in [0, chunks) across the pool and
  // blocks until every chunk is done. Re-entrant calls (a task submitting a
  // bulk) are executed inline in the calling thread to avoid deadlock.
  // If fn throws, the first exception is captured, chunks not yet started
  // are skipped, and the exception is rethrown on the calling thread once
  // all workers have drained.
  void run_bulk(std::size_t chunks, const std::function<void(std::size_t)>& fn);

  // Process-wide pool.
  static ThreadPool& instance();

  // True when the calling thread is a pool worker (of any ThreadPool).
  static bool in_worker();

  // Ledger shard of the calling thread: 1..size() for workers of the
  // slot-enabled singleton (single-writer shards), 0 for everything else —
  // the control thread, run_bulk callers, and foreign/ad-hoc pool threads.
  static std::size_t ledger_slot();

 private:
  struct Bulk;
  void worker_loop(std::size_t slot);
  void drain(Bulk& b);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Bulk>> bulks_;  // live bulks, oldest first
  bool stop_ = false;
};

}  // namespace pimkd
