
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/generators.cpp" "src/CMakeFiles/pimkd_util.dir/util/generators.cpp.o" "gcc" "src/CMakeFiles/pimkd_util.dir/util/generators.cpp.o.d"
  "/root/repo/src/util/geometry.cpp" "src/CMakeFiles/pimkd_util.dir/util/geometry.cpp.o" "gcc" "src/CMakeFiles/pimkd_util.dir/util/geometry.cpp.o.d"
  "/root/repo/src/util/knn_friendly.cpp" "src/CMakeFiles/pimkd_util.dir/util/knn_friendly.cpp.o" "gcc" "src/CMakeFiles/pimkd_util.dir/util/knn_friendly.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/pimkd_util.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/pimkd_util.dir/util/random.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/pimkd_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/pimkd_util.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
