file(REMOVE_RECURSE
  "CMakeFiles/pimkd_btree.dir/btree/pim_btree.cpp.o"
  "CMakeFiles/pimkd_btree.dir/btree/pim_btree.cpp.o.d"
  "libpimkd_btree.a"
  "libpimkd_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimkd_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
