#include "core/decomposition.hpp"

#include <gtest/gtest.h>

#include "core/pim_kdtree.hpp"
#include "util/generators.hpp"
#include "util/stats.hpp"

namespace pimkd::core {
namespace {

TEST(Thresholds, ShapeForP1024) {
  const auto h = group_thresholds(1024);
  // H_0 = 1024, H_1 = 10, H_2 = log2(10) ~ 3.32, H_3 ~ 1.73, H_4 = 1.
  ASSERT_EQ(h.size(), 5u);
  EXPECT_DOUBLE_EQ(h[0], 1024.0);
  EXPECT_DOUBLE_EQ(h[1], 10.0);
  EXPECT_NEAR(h[2], 3.3219, 1e-3);
  EXPECT_NEAR(h[3], 1.7320, 1e-3);
  EXPECT_DOUBLE_EQ(h[4], 1.0);
}

TEST(Thresholds, GroupCountIsLogStarPlusOne) {
  for (const std::size_t P : {4ul, 16ul, 64ul, 256ul, 1024ul, 65536ul}) {
    const auto h = group_thresholds(P);
    EXPECT_EQ(h.size(), static_cast<std::size_t>(log_star2(double(P))) + 1)
        << "P=" << P;
  }
}

TEST(GroupOf, BoundariesForP1024) {
  const auto h = group_thresholds(1024);
  EXPECT_EQ(group_of(5000, h), 0);
  EXPECT_EQ(group_of(1024, h), 0);
  EXPECT_EQ(group_of(1023, h), 1);
  EXPECT_EQ(group_of(10, h), 1);
  EXPECT_EQ(group_of(9.9, h), 2);
  EXPECT_EQ(group_of(3.5, h), 2);
  EXPECT_EQ(group_of(3, h), 3);
  EXPECT_EQ(group_of(1.7, h), 4);
  EXPECT_EQ(group_of(1, h), 4);
  EXPECT_EQ(group_of(0.1, h), 4);  // clamped to >= 1
}

TEST(GroupOf, MonotoneInSize) {
  const auto h = group_thresholds(4096);
  int prev = group_of(1, h);
  for (double t = 1; t < 10000; t *= 1.3) {
    const int g = group_of(t, h);
    EXPECT_LE(g, prev);
    prev = g;
  }
  EXPECT_EQ(prev, 0);
}

// Lemma 3.1: the number of nodes with subtree size >= t is O(n/t); in group
// terms, Group j has O(n / H_j) nodes. Lemma 3.2: intra-group subtrees in
// Group j have height O(log H_{j-1} / H_j) = O(H_j).
class DecompositionLemmas : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DecompositionLemmas, GroupPopulationAndHeightBounds) {
  const std::size_t P = GetParam();
  const std::size_t n = 1 << 15;
  const auto pts = gen_uniform({.n = n, .dim = 2, .seed = 42});
  PimKdConfig cfg;
  cfg.dim = 2;
  cfg.leaf_cap = 8;
  cfg.system.num_modules = P;
  PimKdTree tree(cfg, pts);

  const auto h = tree.thresholds();
  const auto stats = tree.decomposition_stats();
  ASSERT_EQ(stats.size(), h.size());
  const double num_nodes = static_cast<double>(tree.num_nodes());

  for (std::size_t j = 0; j < stats.size(); ++j) {
    if (stats[j].nodes == 0) continue;
    // Lemma 3.1: |Group j| = O(n / H_j) — constant chosen generously. Leaves
    // are capacity leaf_cap, so "node count" stands in for n/leaf_cap.
    const double bound = 8.0 * num_nodes / std::max(h[j] / 4.0, 1.0);
    EXPECT_LE(static_cast<double>(stats[j].nodes), bound) << "group " << j;
    // Lemma 3.2: component height O(H_j) for j >= 1 (paper's O(log^(j) P)).
    if (j >= 1) {
      const double height_bound = 4.0 * std::max(h[j], 1.0) + 8.0;
      EXPECT_LE(static_cast<double>(stats[j].max_component_height),
                height_bound)
          << "group " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, DecompositionLemmas,
                         ::testing::Values(16, 64, 256));

TEST(Decomposition, GroupZeroNodesAreLargeSubtrees) {
  const auto pts = gen_uniform({.n = 4096, .dim = 2, .seed = 5});
  PimKdConfig cfg;
  cfg.dim = 2;
  cfg.leaf_cap = 8;
  cfg.system.num_modules = 64;
  PimKdTree tree(cfg, pts);
  tree.pool().for_each([&](const NodeRec& rec) {
    if (rec.group == 0) EXPECT_GE(rec.exact_size, 32u);  // ~P with counter slack
    if (rec.group >= 1) EXPECT_LT(rec.exact_size, 200u);
  });
}

}  // namespace
}  // namespace pimkd::core
