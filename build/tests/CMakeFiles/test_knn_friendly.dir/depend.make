# Empty dependencies file for test_knn_friendly.
# This may be replaced when dependencies are built.
