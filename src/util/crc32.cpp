#include "util/crc32.hpp"

#include <array>

namespace pimkd::util {

namespace {

// Reflected CRC32C table for the Castagnoli polynomial 0x1EDC6F41
// (reflected form 0x82F63B78), built once at static-init time.
struct Crc32cTable {
  std::array<std::uint32_t, 256> t{};
  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = kTable.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c(0, data, len);
}

}  // namespace pimkd::util
