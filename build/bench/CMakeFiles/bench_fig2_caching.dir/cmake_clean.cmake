file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_caching.dir/bench_fig2_caching.cpp.o"
  "CMakeFiles/bench_fig2_caching.dir/bench_fig2_caching.cpp.o.d"
  "bench_fig2_caching"
  "bench_fig2_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
