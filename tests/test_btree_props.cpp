// Property tests for the PIM B+-tree: configuration equivalence (answers
// never depend on caching/G/push-pull), scan-after-churn correctness, and
// determinism of the cost ledger.
#include <gtest/gtest.h>

#include <map>

#include "btree/pim_btree.hpp"
#include "util/random.hpp"

namespace pimkd::btree {
namespace {

std::vector<std::pair<Key, Value>> random_kv(std::size_t n,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Key, Value>> kv(n);
  for (auto& [k, v] : kv) {
    k = rng.next_u64() >> 20;
    v = rng.next_u64();
  }
  return kv;
}

class BTreeConfigEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BTreeConfigEquivalence, SameAnswersAfterChurn) {
  BTreeConfig cfg;
  cfg.fanout = 8;
  cfg.system.num_modules = 32;
  cfg.system.seed = 3;
  switch (GetParam()) {
    case 0: break;
    case 1: cfg.caching = core::CachingMode::kNone; break;
    case 2: cfg.caching = core::CachingMode::kTopDown; break;
    case 3: cfg.caching = core::CachingMode::kBottomUp; break;
    case 4: cfg.cached_groups = 1; break;
    case 5: cfg.use_push_pull = false; break;
    default: break;
  }
  PimBTree tree(cfg);
  std::map<Key, Value> oracle;
  Rng rng(4);
  for (int round = 0; round < 6; ++round) {
    std::map<Key, Value> fresh;
    for (int i = 0; i < 300; ++i) fresh[rng.next_below(4000)] = rng.next_u64();
    std::vector<std::pair<Key, Value>> batch(fresh.begin(), fresh.end());
    tree.upsert(batch);
    for (const auto& [k, v] : batch) oracle[k] = v;
    std::vector<Key> dead;
    for (const auto& [k, v] : oracle)
      if (rng.next_bernoulli(0.25)) dead.push_back(k);
    tree.erase(dead);
    for (const Key k : dead) oracle.erase(k);
    ASSERT_TRUE(tree.check_invariants()) << "round " << round;
  }
  // Lookups and scans against the oracle.
  std::vector<Key> probes;
  for (Key k = 0; k < 4000; k += 7) probes.push_back(k);
  const auto got = tree.lookup(probes);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto it = oracle.find(probes[i]);
    if (it == oracle.end()) {
      EXPECT_FALSE(got[i].has_value());
    } else {
      ASSERT_TRUE(got[i].has_value());
      EXPECT_EQ(*got[i], it->second);
    }
  }
  const std::pair<Key, Key> range{500, 2500};
  const auto scanned = tree.scan(std::span(&range, 1))[0];
  std::vector<std::pair<Key, Value>> want;
  for (auto it = oracle.lower_bound(500);
       it != oracle.end() && it->first <= 2500; ++it)
    want.emplace_back(it->first, it->second);
  EXPECT_EQ(scanned, want);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BTreeConfigEquivalence,
                         ::testing::Range(0, 6));

TEST(BTreeProps, DeterministicLedger) {
  auto run = [] {
    BTreeConfig cfg;
    cfg.fanout = 16;
    cfg.system.num_modules = 64;
    cfg.system.seed = 9;
    const auto kv = random_kv(5000, 10);
    PimBTree tree(cfg, kv);
    std::vector<Key> probes;
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
      probes.push_back(kv[rng.next_below(kv.size())].first);
    (void)tree.lookup(probes);
    const auto more = random_kv(1000, 12);
    tree.upsert(more);
    const auto s = tree.metrics().snapshot();
    return std::tuple{s.communication, s.pim_work, s.rounds,
                      tree.storage_words(), tree.num_nodes()};
  };
  EXPECT_EQ(run(), run());
}

TEST(BTreeProps, ScanAcrossManyLeaves) {
  BTreeConfig cfg;
  cfg.fanout = 8;
  cfg.system.num_modules = 16;
  cfg.system.seed = 13;
  std::vector<std::pair<Key, Value>> kv;
  for (Key k = 0; k < 5000; ++k) kv.emplace_back(k, k * 3);
  PimBTree tree(cfg, kv);
  // A scan spanning hundreds of leaves returns the exact ordered run.
  const std::pair<Key, Key> range{123, 4567};
  const auto got = tree.scan(std::span(&range, 1))[0];
  ASSERT_EQ(got.size(), 4567u - 123u + 1u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, 123 + i);
    EXPECT_EQ(got[i].second, (123 + i) * 3);
  }
}

TEST(BTreeProps, MonotoneBatchAppendsKeepBalance) {
  // Right-edge (time-series) insertion: the hardest split pattern.
  BTreeConfig cfg;
  cfg.fanout = 16;
  cfg.system.num_modules = 32;
  cfg.system.seed = 14;
  PimBTree tree(cfg);
  Key clock = 0;
  for (int tick = 0; tick < 20; ++tick) {
    std::vector<std::pair<Key, Value>> batch;
    for (int i = 0; i < 500; ++i) batch.emplace_back(clock++, 0);
    tree.upsert(batch);
    ASSERT_TRUE(tree.check_invariants()) << "tick " << tick;
  }
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_LE(tree.height(), 6u);
  // Storage stays balanced despite the right-leaning workload (hash
  // placement of chunks, not key ranges).
  EXPECT_LT(tree.metrics().storage_balance().imbalance, 3.0);
}

}  // namespace
}  // namespace pimkd::btree
