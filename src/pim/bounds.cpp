#include "pim/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace pimkd::pim {

namespace {

// Calibrated leading constants. Fitted against the measurements recorded in
// EXPERIMENTS.md (E1-E4) with a 2-4x margin so the checks survive input-
// distribution and machine variance while still catching asymptotic drift.
constexpr double kBuildCommPerPoint = 30.0;   // x log*P     (measured ~14.6)
constexpr double kUpdateCommPerOp = 10.0;     // x log*P log(n)/alpha (~3.2)
constexpr double kLeafSearchCommPerQ = 8.0;   // x (min(log*P, log(n/S))+1)
constexpr double kKnnCommPerQ = 8.0;          // x k (log*P + 1)
constexpr double kCommTimeFactor = 4.0;       // x alpha comm/P
constexpr double kCommTimeFloor = 1024.0;     // words; small-batch skew floor
constexpr double kRoundsFloor = 8.0;          // rounds; per-batch control cost

double logstar(const BoundParams& p) {
  return static_cast<double>(log_star2(std::max<double>(2.0, p.P)));
}

double log2n(const BoundParams& p) {
  return std::max(1.0, std::log2(std::max<double>(2.0, p.n)));
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(4);
  os << v;
  return os.str();
}

}  // namespace

std::string BoundReport::to_string() const {
  std::ostringstream os;
  os << "BoundReport[" << op << "] n=" << params.n << " S=" << params.batch
     << " P=" << params.P << " M=" << params.M << " alpha=" << params.alpha;
  if (params.k) os << " k=" << params.k;
  os << (pass() ? "  PASS" : "  FAIL") << '\n';
  for (const auto& r : results) {
    os << "  " << (r.pass() ? "pass" : "FAIL") << "  " << r.dimension
       << ": measured " << fmt(r.measured) << " vs budget " << fmt(r.budget)
       << "  (" << r.expr << ")\n";
  }
  return os.str();
}

BoundReport BoundCheck::make_report(const char* op, const Snapshot& d,
                                    const BoundParams& p, double comm_budget,
                                    const std::string& comm_expr) const {
  BoundReport rep;
  rep.op = op;
  rep.params = p;

  comm_budget *= slack_;
  rep.results.push_back(BoundResult{
      "communication", static_cast<double>(d.communication), comm_budget,
      comm_expr + " * slack " + fmt(slack_)});

  // Load balance: per-round max module traffic should track comm/P within
  // the tree's alpha factor. The floor covers small batches where one
  // module necessarily carries a whole query path.
  const double comm = static_cast<double>(d.communication);
  const double pmod = static_cast<double>(std::max<std::size_t>(1, p.P));
  const double ct_budget =
      slack_ * std::max(kCommTimeFloor,
                        kCommTimeFactor * p.alpha * comm / pmod);
  rep.results.push_back(BoundResult{
      "comm_time", static_cast<double>(d.comm_time), ct_budget,
      "max(" + fmt(kCommTimeFloor) + ", " + fmt(kCommTimeFactor) +
          " * alpha * comm/P) * slack " + fmt(slack_)});

  // Rounds follow from the comm budget: a round moving w words counts as
  // ceil(w / M), so total rounds are bounded by comm_budget/M plus O(1)
  // control rounds per batch operation.
  const double cache = static_cast<double>(std::max<std::size_t>(1, p.M));
  const double nb = static_cast<double>(std::max<std::size_t>(1, p.batches));
  const double r_budget = comm_budget / cache + slack_ * kRoundsFloor * nb;
  rep.results.push_back(BoundResult{
      "rounds", static_cast<double>(d.rounds), r_budget,
      "comm_budget/M + " + fmt(kRoundsFloor) + " * batches(" + fmt(nb) +
          ") * slack " + fmt(slack_)});
  return rep;
}

BoundReport BoundCheck::custom(const char* op, const Snapshot& d,
                               const BoundParams& p, double comm_budget,
                               const std::string& comm_expr) const {
  return make_report(op, d, p, comm_budget, comm_expr);
}

BoundReport BoundCheck::construction(const Snapshot& d,
                                     const BoundParams& p) const {
  const double ls = logstar(p);
  const double n = static_cast<double>(std::max<std::size_t>(1, p.batch));
  const double budget = kBuildCommPerPoint * n * ls;
  return make_report("construction", d, p,
                     budget,
                     fmt(kBuildCommPerPoint) + " * n * log*P(" + fmt(ls) +
                         ")");
}

BoundReport BoundCheck::update(const Snapshot& d, const BoundParams& p) const {
  const double ls = logstar(p);
  const double lg = log2n(p);
  const double s = static_cast<double>(std::max<std::size_t>(1, p.batch));
  const double a = std::max(1.0, p.alpha);
  const double budget = kUpdateCommPerOp * s * ls * lg / a;
  return make_report("update", d, p, budget,
                     fmt(kUpdateCommPerOp) + " * S * log*P(" + fmt(ls) +
                         ") * log n(" + fmt(lg) + ") / alpha");
}

BoundReport BoundCheck::leaf_search(const Snapshot& d,
                                    const BoundParams& p) const {
  const double ls = logstar(p);
  const double s = static_cast<double>(std::max<std::size_t>(1, p.batch));
  const double n = static_cast<double>(std::max<std::size_t>(2, p.n));
  const double lg_ratio = std::max(1.0, std::log2(std::max(2.0, n / s)));
  const double depth = std::min(ls, lg_ratio) + 1.0;
  const double budget = kLeafSearchCommPerQ * s * depth;
  return make_report("leaf_search", d, p, budget,
                     fmt(kLeafSearchCommPerQ) + " * S * (min(log*P, log(n/S))(" +
                         fmt(depth - 1.0) + ") + 1)");
}

BoundReport BoundCheck::knn(const Snapshot& d, const BoundParams& p) const {
  const double ls = logstar(p);
  const double s = static_cast<double>(std::max<std::size_t>(1, p.batch));
  const double k = static_cast<double>(std::max<std::size_t>(1, p.k));
  // k+2: k result words plus the query descriptor / root hop, so the check
  // stays meaningful at k=1 where the fixed per-query cost dominates.
  const double budget = kKnnCommPerQ * s * (k + 2.0) * (ls + 1.0);
  return make_report("knn", d, p, budget,
                     fmt(kKnnCommPerQ) + " * S * (k(" + fmt(k) +
                         ")+2) * (log*P(" + fmt(ls) + ") + 1)");
}

}  // namespace pimkd::pim
