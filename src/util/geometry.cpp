#include "util/geometry.hpp"

namespace pimkd {

Box bounding_box(std::span<const Point> pts, int dim) {
  Box b = Box::empty(dim);
  for (const Point& p : pts) b.extend(p, dim);
  return b;
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << '(';
  for (int d = 0; d < kMaxDim; ++d) {
    if (d) os << ", ";
    os << p[d];
    if (d >= 3) { os << ", ..."; break; }
  }
  return os << ')';
}

}  // namespace pimkd
