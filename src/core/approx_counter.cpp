#include "core/approx_counter.hpp"

// All counter logic is inline (hot path); this TU anchors the header in the
// build so it is compiled standalone under the project warning set.
