// Property suite: determinism, cross-configuration result equivalence, and
// long mixed-operation stress with invariants checked throughout.
#include <gtest/gtest.h>

#include "kdtree/bruteforce.hpp"
#include "core/pim_kdtree.hpp"
#include "util/generators.hpp"

namespace pimkd::core {
namespace {

PimKdConfig base_cfg(std::size_t P, int dim = 2, std::uint64_t seed = 1) {
  PimKdConfig cfg;
  cfg.dim = dim;
  cfg.leaf_cap = 8;
  cfg.system.num_modules = P;
  cfg.system.seed = seed;
  return cfg;
}

TEST(Props, FullyDeterministicOperationStream) {
  auto run = [] {
    PimKdTree tree(base_cfg(16, 2, 42));
    Rng rng(7);
    std::vector<PointId> live;
    std::uint64_t digest = 0;
    for (int round = 0; round < 6; ++round) {
      const auto pts = gen_uniform(
          {.n = 300, .dim = 2, .seed = 70 + std::uint64_t(round)});
      const auto ids = tree.insert(pts);
      live.insert(live.end(), ids.begin(), ids.end());
      const auto qs = gen_uniform_queries(pts, 2, 50, 71);
      for (const auto& r : tree.knn(qs, 3))
        for (const auto& nb : r) digest = digest * 31 + nb.id;
      std::vector<PointId> dead;
      std::vector<PointId> keep;
      for (const PointId id : live)
        (rng.next_bernoulli(0.25) ? dead : keep).push_back(id);
      tree.erase(dead);
      live = std::move(keep);
    }
    const auto s = tree.metrics().snapshot();
    return std::tuple{digest, s.communication, s.pim_work, s.rounds,
                      tree.num_nodes(), tree.storage_words()};
  };
  EXPECT_EQ(run(), run());
}

// Query results must be configuration-independent: caching mode, G, and
// push-pull only change the *cost*, never the answer.
class ConfigEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ConfigEquivalence, SameAnswersAfterUpdates) {
  const int variant = GetParam();
  auto cfg = base_cfg(32, 2, 9);
  switch (variant) {
    case 0: break;
    case 1: cfg.caching = CachingMode::kNone; break;
    case 2: cfg.caching = CachingMode::kTopDown; break;
    case 3: cfg.caching = CachingMode::kBottomUp; break;
    case 4: cfg.cached_groups = 1; break;
    case 5: cfg.use_push_pull = false; break;
    case 6: cfg.use_approx_counters = false; break;
    default: break;
  }
  PimKdTree tree(cfg);
  std::vector<Point> all;
  for (int b = 0; b < 4; ++b) {
    const auto pts = gen_uniform(
        {.n = 500, .dim = 2, .seed = 90 + std::uint64_t(b)});
    (void)tree.insert(pts);
    all.insert(all.end(), pts.begin(), pts.end());
  }
  ASSERT_TRUE(tree.check_invariants());
  const auto qs = gen_uniform_queries(all, 2, 30, 91);
  const auto res = tree.knn(qs, 6);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want = brute_knn(all, 2, qs[i], 6);
    ASSERT_EQ(res[i].size(), want.size());
    for (std::size_t j = 0; j < want.size(); ++j)
      EXPECT_DOUBLE_EQ(res[i][j].sq_dist, want[j].sq_dist) << "variant "
                                                           << variant;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ConfigEquivalence,
                         ::testing::Range(0, 7));

// Dimension sweep: correctness does not depend on D (costs carry the
// implicit D factor, Table 1 footnote 3).
class DimSweep : public ::testing::TestWithParam<int> {};

TEST_P(DimSweep, KnnAndRangeMatchBruteForce) {
  const int dim = GetParam();
  const auto pts = gen_uniform(
      {.n = 1500, .dim = dim, .seed = 100 + std::uint64_t(dim)});
  PimKdTree tree(base_cfg(16, dim), pts);
  ASSERT_TRUE(tree.check_invariants());
  const auto qs = gen_uniform_queries(pts, dim, 10, 101);
  const auto res = tree.knn(qs, 5);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want = brute_knn(pts, dim, qs[i], 5);
    for (std::size_t j = 0; j < want.size(); ++j)
      EXPECT_DOUBLE_EQ(res[i][j].sq_dist, want[j].sq_dist);
  }
  Box b = Box::empty(dim);
  Point lo;
  Point hi;
  for (int d = 0; d < dim; ++d) {
    lo[d] = 0.2;
    hi[d] = 0.7;
  }
  b.extend(lo, dim);
  b.extend(hi, dim);
  EXPECT_EQ(tree.range(std::span(&b, 1))[0], brute_range(pts, dim, b));
}

INSTANTIATE_TEST_SUITE_P(Dims, DimSweep, ::testing::Values(1, 3, 5, 8, 12));

TEST(Props, RadiusEqualsRangeCorners) {
  // A radius query must return a subset of the enclosing box's range query.
  const auto pts = gen_uniform({.n = 3000, .dim = 2, .seed = 15});
  PimKdTree tree(base_cfg(16), pts);
  Rng rng(16);
  for (int t = 0; t < 10; ++t) {
    Point c;
    c[0] = rng.next_double();
    c[1] = rng.next_double();
    const Coord r = 0.05 + 0.1 * rng.next_double();
    const auto ball = tree.radius(std::span(&c, 1), r)[0];
    Box b = Box::empty(2);
    Point lo = c;
    Point hi = c;
    lo[0] -= r;
    lo[1] -= r;
    hi[0] += r;
    hi[1] += r;
    b.extend(lo, 2);
    b.extend(hi, 2);
    const auto box = tree.range(std::span(&b, 1))[0];
    for (const PointId id : ball)
      EXPECT_TRUE(std::binary_search(box.begin(), box.end(), id));
  }
}

TEST(Props, PrioritiesSurviveUpdatesViaRebuild) {
  // set_priorities after updates reflects the current live set.
  PimKdTree tree(base_cfg(8));
  const auto pts = gen_uniform({.n = 800, .dim = 2, .seed = 17});
  const auto ids = tree.insert(pts);
  std::vector<PointId> dead(ids.begin(), ids.begin() + 300);
  tree.erase(dead);
  std::vector<double> prio(ids.size());
  Rng rng(18);
  for (auto& p : prio) p = rng.next_double();
  tree.set_priorities(prio);
  // Query from every live point: the dependent point must be live and have
  // strictly higher (priority, id).
  std::vector<Point> qs;
  std::vector<double> qp;
  std::vector<PointId> self;
  for (PointId id = 300; id < 400; ++id) {
    qs.push_back(pts[id]);
    qp.push_back(prio[id]);
    self.push_back(id);
  }
  const auto dep = tree.dependent_points(qs, qp, self);
  for (std::size_t i = 0; i < dep.size(); ++i) {
    if (dep[i].id == kInvalidPoint) continue;
    EXPECT_TRUE(tree.is_live(dep[i].id));
    EXPECT_TRUE(prio[dep[i].id] > qp[i] ||
                (prio[dep[i].id] == qp[i] && dep[i].id > self[i]));
  }
}

TEST(Props, LongMixedStress) {
  PimKdTree tree(base_cfg(16, 3, 77));
  Rng rng(19);
  std::vector<PointId> live;
  std::vector<Point> live_pts;
  for (int round = 0; round < 15; ++round) {
    const std::size_t batch = 100 + rng.next_below(400);
    const auto pts = gen_uniform(
        {.n = batch, .dim = 3, .seed = 190 + std::uint64_t(round)});
    const auto ids = tree.insert(pts);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      live.push_back(ids[i]);
      live_pts.push_back(pts[i]);
    }
    if (round % 3 == 2) {
      std::vector<PointId> dead;
      std::vector<PointId> keep_ids;
      std::vector<Point> keep_pts;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (rng.next_bernoulli(0.4)) {
          dead.push_back(live[i]);
        } else {
          keep_ids.push_back(live[i]);
          keep_pts.push_back(live_pts[i]);
        }
      }
      tree.erase(dead);
      live = std::move(keep_ids);
      live_pts = std::move(keep_pts);
    }
    ASSERT_TRUE(tree.check_invariants()) << "round " << round;
    ASSERT_EQ(tree.size(), live.size());
    // Spot-check correctness every few rounds.
    if (round % 5 == 4 && !live_pts.empty()) {
      const auto qs = gen_uniform_queries(live_pts, 3, 8, 191);
      const auto res = tree.knn(qs, 3);
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const auto want = brute_knn(live_pts, 3, qs[i], 3);
        for (std::size_t j = 0; j < want.size(); ++j)
          ASSERT_DOUBLE_EQ(res[i][j].sq_dist, want[j].sq_dist);
      }
    }
  }
}

TEST(Props, CounterCopiesStayInSyncAfterHeavyChurn) {
  PimKdTree tree(base_cfg(16, 2, 5));
  Rng rng(20);
  std::vector<PointId> live;
  for (int round = 0; round < 8; ++round) {
    const auto pts = gen_uniform(
        {.n = 400, .dim = 2, .seed = 200 + std::uint64_t(round)});
    const auto ids = tree.insert(pts);
    live.insert(live.end(), ids.begin(), ids.end());
    std::vector<PointId> dead;
    std::vector<PointId> keep;
    for (const PointId id : live)
      (rng.next_bernoulli(0.3) ? dead : keep).push_back(id);
    tree.erase(dead);
    live = std::move(keep);
  }
  // check_invariants verifies every copy's counter equals the canonical one.
  ASSERT_TRUE(tree.check_invariants());
}

TEST(Props, HugeBatchSingleInsert) {
  PimKdTree tree(base_cfg(64));
  const auto pts = gen_uniform({.n = 50000, .dim = 2, .seed = 21});
  (void)tree.insert(pts);
  ASSERT_TRUE(tree.check_invariants());
  const auto more = gen_uniform({.n = 50000, .dim = 2, .seed = 22});
  (void)tree.insert(more);  // doubling in one batch
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_EQ(tree.size(), 100000u);
}

}  // namespace
}  // namespace pimkd::core
