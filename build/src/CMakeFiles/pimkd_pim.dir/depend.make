# Empty dependencies file for pimkd_pim.
# This may be replaced when dependencies are built.
