// Online serving layer: MPSC ingestion, batch-forming policies, epoch-
// versioned read semantics, shutdown guarantees, and the two acceptance
// invariants of DESIGN.md §8:
//   * a served stream produces a cost ledger byte-identical to the
//     equivalent hand-batched run against a fresh tree;
//   * the whole serving pipeline is thread-count-invariant — the binary
//     re-executes itself under PIMKD_THREADS=1 and 8 and compares batch
//     sequences, results, and ledger hashes (custom main, like
//     test_determinism.cpp).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "parallel/mpsc_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "util/stats.hpp"

namespace {

using namespace pimkd;
using namespace pimkd::serve;

core::PimKdConfig small_cfg(std::size_t P = 8) {
  core::PimKdConfig cfg;
  cfg.dim = 2;
  cfg.leaf_cap = 8;
  cfg.sigma = 64;
  cfg.system.num_modules = P;
  cfg.system.cache_words = 1 << 22;
  cfg.system.seed = 3;
  return cfg;
}

Point pt(Coord x, Coord y) {
  Point p;
  p[0] = x;
  p[1] = y;
  return p;
}

// --- MPSC queue ---------------------------------------------------------------

TEST(MpscQueue, FifoUnderSingleProducer) {
  MpscQueue<int> q;
  EXPECT_EQ(q.approx_size(), 0u);
  int v = -1;
  EXPECT_FALSE(q.pop(v));
  for (int i = 0; i < 100; ++i) q.push(int(i));
  EXPECT_EQ(q.approx_size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);  // total order under a single producer
  }
  EXPECT_FALSE(q.pop(v));
  EXPECT_EQ(q.approx_size(), 0u);
}

TEST(MpscQueue, ConcurrentProducersLoseNothing) {
  MpscQueue<std::uint64_t> q;
  const std::uint64_t kProducers = 8, kPer = 5000;
  std::vector<std::thread> ts;
  for (std::uint64_t p = 0; p < kProducers; ++p)
    ts.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPer; ++i) q.push(p * kPer + i);
    });
  std::vector<std::uint64_t> last(kProducers, 0);  // per-producer FIFO check
  std::uint64_t seen = 0, sum = 0;
  std::uint64_t v = 0;
  while (seen < kProducers * kPer) {
    if (!q.pop(v)) continue;
    const std::uint64_t p = v / kPer;
    ASSERT_LT(p, kProducers);
    ASSERT_GE(v + 1, last[p]) << "per-producer order violated";
    last[p] = v + 1;
    sum += v;
    ++seen;
  }
  for (auto& t : ts) t.join();
  const std::uint64_t total = kProducers * kPer;
  EXPECT_EQ(sum, total * (total - 1) / 2);  // every value exactly once
  EXPECT_FALSE(q.pop(v));
}

// --- Scheduler: policies and edge cases ---------------------------------------

TEST(Scheduler, EmptyQueueTicksAreFree) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 256, .dim = 2, .seed = 1});
  core::PimKdTree tree(cfg, pts);

  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;
  BatchScheduler sched(tree, sc);
  const auto before = tree.metrics().snapshot();
  for (std::uint64_t t = 0; t < 100; ++t) EXPECT_EQ(sched.pump(t), 0u);
  EXPECT_EQ(sched.flush(100), 0u);
  const auto d = tree.metrics().snapshot() - before;
  EXPECT_EQ(d.cpu_work, 0u);
  EXPECT_EQ(d.communication, 0u);
  EXPECT_EQ(d.rounds, 0u);
  const ServeStats st = sched.stats();
  EXPECT_EQ(st.batches, 0u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(sched.epoch(), 0u);
}

TEST(Scheduler, FixedSizePolicyFormsExactBatches) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 256, .dim = 2, .seed = 1});
  core::PimKdTree tree(cfg, pts);

  SchedulerConfig sc;
  sc.policy = Policy::kFixedSize;
  sc.batch_size = 4;
  BatchScheduler sched(tree, sc);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 10; ++i)
    futs.push_back(sched.submit(Request::knn(pts[i], 3), /*now=*/i));
  EXPECT_EQ(sched.pump(10), 8u);  // two full batches of 4; 2 stay pending
  EXPECT_EQ(sched.flush(11), 2u);

  const auto log = sched.batch_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].size(), 4u);
  EXPECT_EQ(log[0].reason, 's');
  EXPECT_EQ(log[1].size(), 4u);
  EXPECT_EQ(log[1].reason, 's');
  EXPECT_EQ(log[2].size(), 2u);
  EXPECT_EQ(log[2].reason, 'f');
  for (auto& f : futs) {
    const Response r = f.get();
    EXPECT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.neighbors.size(), 3u);
    EXPECT_EQ(r.epoch, 0u);  // read-only stream: epoch never advances
  }
  EXPECT_EQ(sched.epoch(), 0u);
}

TEST(Scheduler, DeadlineExpirySingleRequest) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 128, .dim = 2, .seed = 2});
  core::PimKdTree tree(cfg, pts);

  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;
  sc.deadline_ticks = 100;
  BatchScheduler sched(tree, sc);

  auto fut = sched.submit(Request::knn(pts[0], 1), /*now=*/0);
  EXPECT_EQ(sched.pump(50), 0u);  // not due yet
  EXPECT_EQ(sched.pump(99), 0u);
  EXPECT_EQ(sched.pump(100), 1u);  // oldest waiter hits the deadline
  const auto log = sched.batch_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].reason, 'd');
  const Response r = fut.get();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.submit_tick, 0u);
  EXPECT_EQ(r.dispatch_tick, 100u);
  EXPECT_EQ(r.complete_tick, 100u);  // virtual-time mode: completion == pump
}

TEST(Scheduler, EraseThenKnnSameEpochSeesSnapshot) {
  auto cfg = small_cfg(4);
  std::vector<Point> pts = {pt(0.1, 0.1), pt(0.2, 0.2), pt(0.8, 0.8),
                            pt(0.9, 0.9)};
  core::PimKdTree tree(cfg, pts);

  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;  // dispatch everything pending on pump
  BatchScheduler sched(tree, sc);

  // One epoch admits both the erase of id 0 and a knn at id 0's location:
  // the read must observe the epoch-0 snapshot, i.e. still see id 0.
  auto f_erase = sched.submit(Request::erase(0), 0);
  auto f_knn = sched.submit(Request::knn(pt(0.1, 0.1), 1), 0);
  EXPECT_EQ(sched.pump(1), 2u);

  const Response rk = f_knn.get();
  ASSERT_TRUE(rk.ok()) << rk.error;
  ASSERT_EQ(rk.neighbors.size(), 1u);
  EXPECT_EQ(rk.neighbors[0].id, 0u) << "same-epoch read must see the snapshot";
  EXPECT_EQ(rk.epoch, 0u);

  const Response re = f_erase.get();
  EXPECT_TRUE(re.ok());
  EXPECT_TRUE(re.erased);
  EXPECT_EQ(re.epoch, 1u);  // effect first visible in the next epoch
  EXPECT_EQ(sched.epoch(), 1u);
  EXPECT_FALSE(tree.is_live(0));

  // Next epoch: the same query no longer sees the erased point.
  auto f_knn2 = sched.submit(Request::knn(pt(0.1, 0.1), 1), 2);
  EXPECT_EQ(sched.pump(3), 1u);
  const Response rk2 = f_knn2.get();
  ASSERT_EQ(rk2.neighbors.size(), 1u);
  EXPECT_NE(rk2.neighbors[0].id, 0u);
  EXPECT_EQ(rk2.epoch, 1u);
}

TEST(Scheduler, ShutdownResolvesEverything) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 256, .dim = 2, .seed = 5});
  core::PimKdTree tree(cfg, pts);

  SchedulerConfig sc;
  sc.policy = Policy::kFixedSize;
  sc.batch_size = 1000;  // never reached: stop() must flush the remainder
  BatchScheduler sched(tree, sc);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 7; ++i)
    futs.push_back(sched.submit(Request::knn(pts[i], 2), i));
  futs.push_back(sched.submit(Request::insert(pt(0.5, 0.5)), 7));
  sched.stop();

  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "stop() left a future unresolved";
    const Response r = f.get();
    EXPECT_TRUE(r.ok()) << r.error;  // accepted work is executed, not dropped
  }
  const ServeStats st = sched.stats();
  EXPECT_EQ(st.completed, 8u);
  EXPECT_EQ(st.dispatch_flush, 1u);

  // After stop, new submissions are rejected — but still resolved.
  auto late = sched.submit(Request::knn(pts[0], 1), 99);
  const Response r = late.get();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("stopped"), std::string::npos);
  EXPECT_EQ(sched.stats().rejected, 1u);
}

TEST(Scheduler, InvalidRequestFailsAlone) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 128, .dim = 2, .seed = 6});
  core::PimKdTree tree(cfg, pts);
  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;
  BatchScheduler sched(tree, sc);

  auto bad = sched.submit(
      Request::knn(pt(std::numeric_limits<Coord>::quiet_NaN(), 0.5), 3), 0);
  auto bad_k = sched.submit(Request::knn(pts[0], 0), 0);
  auto good = sched.submit(Request::knn(pts[0], 3), 0);

  // Malformed requests are rejected at submit — before batching — so they
  // can neither poison a batch nor occupy a slot in one.
  ASSERT_EQ(bad.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_FALSE(bad.get().ok());
  ASSERT_EQ(bad_k.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_FALSE(bad_k.get().ok());

  EXPECT_EQ(sched.pump(1), 1u);
  const Response r = good.get();
  EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.neighbors.size(), 3u);
  EXPECT_EQ(sched.stats().rejected, 2u);
}

TEST(Scheduler, InsertIdsRoundTrip) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 100, .dim = 2, .seed = 8});
  core::PimKdTree tree(cfg, pts);
  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;
  BatchScheduler sched(tree, sc);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 5; ++i)
    futs.push_back(
        sched.submit(Request::insert(pt(0.91 + 0.01 * i, 0.91)), i));
  sched.pump(1);
  for (int i = 0; i < 5; ++i) {
    const Response r = futs[i].get();
    ASSERT_TRUE(r.ok()) << r.error;
    // The tree assigns sequential ids in arrival order — the generator's
    // id model (workload.cpp) and exactly-once accounting both rest on this.
    EXPECT_EQ(r.inserted_id, static_cast<PointId>(100 + i));
    EXPECT_TRUE(tree.is_live(r.inserted_id));
  }
  auto q = sched.submit(Request::knn(pt(0.91, 0.91), 1), 2);
  sched.pump(3);
  const Response rq = q.get();
  ASSERT_TRUE(rq.ok()) << rq.error;
  ASSERT_EQ(rq.neighbors.size(), 1u);
  EXPECT_EQ(rq.neighbors[0].id, 100u);
}

TEST(Scheduler, TradeoffPolicyTargetsTheoryOptimum) {
  // S* = n / 2^(G + log^(G) P): the smallest batch at which Theorem 5.1's
  // per-query communication floor is reached (DESIGN.md §8).
  auto cfg = small_cfg(64);
  const std::size_t P = 64;
  const int logstar = log_star2(double(P));
  const int G = cfg.cached_groups < 0 ? logstar
                                      : std::min(cfg.cached_groups, logstar);
  const double hops = double(G) + ilog2(double(P), G);
  const std::size_t n = 1u << 15;
  const auto expect =
      static_cast<std::size_t>(std::max(1.0, double(n) / std::pow(2.0, hops)));

  EXPECT_EQ(BatchScheduler::tradeoff_target(cfg, P, n, 1, 1u << 20), expect);
  // Clamps: never below the configured floor or above the cap.
  EXPECT_EQ(BatchScheduler::tradeoff_target(cfg, P, n, expect + 100, 1u << 20),
            expect + 100);
  EXPECT_EQ(BatchScheduler::tradeoff_target(cfg, P, n, 1, expect - 100),
            expect - 100);
  // Monotone in n: bigger trees want bigger batches.
  EXPECT_GE(BatchScheduler::tradeoff_target(cfg, P, 4 * n, 1, 1u << 20),
            expect);

  // And the live scheduler reports it.
  const auto pts = gen_uniform({.n = n, .dim = 2, .seed = 9});
  core::PimKdTree tree(cfg, pts);
  SchedulerConfig sc;
  sc.policy = Policy::kTradeoff;
  sc.batch_size = 1;
  sc.max_batch = 1u << 20;
  BatchScheduler sched(tree, sc);
  EXPECT_EQ(sched.target_batch_size(), expect);
}

TEST(Scheduler, AdaptivePolicyRunsControllerAtEpochBoundaries) {
  auto cfg = small_cfg(16);
  cfg.caching = core::CachingMode::kNone;  // wrong for a read-only stream
  const auto pts = gen_uniform({.n = 4000, .dim = 2, .seed = 17});
  core::PimKdTree tree(cfg, pts);
  SchedulerConfig sc;
  sc.policy = Policy::kAdaptive;
  sc.deadline_ticks = 1;  // dispatch everything pending at each pump
  BatchScheduler sched(tree, sc);
  ASSERT_NE(sched.replication_controller(), nullptr);

  std::vector<std::future<Response>> futs;
  std::uint64_t tick = 0;
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 120; ++i)
      futs.push_back(sched.submit(Request::knn(pts[(e * 120 + i) % 4000], 4),
                                  tick));
    tick += 10;
    sched.pump(tick);
  }
  sched.stop();
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());

  // A persistently read-only stream must have pulled the tree out of kNone,
  // flagged the switch in the stats and in exactly that batch's log entry.
  const ServeStats st = sched.stats();
  EXPECT_GE(st.mode_switches, 1u);
  EXPECT_NE(tree.config().caching, core::CachingMode::kNone);
  EXPECT_EQ(sched.replication_controller()->switches(), st.mode_switches);
  std::uint64_t flagged = 0;
  for (const BatchLog& b : sched.batch_log())
    if (b.mode_switch) ++flagged;
  EXPECT_EQ(flagged, st.mode_switches);
  EXPECT_GT(tree.op_stats().words_replication, 0u);

  // Non-adaptive policies never instantiate a controller.
  core::PimKdTree plain(small_cfg(), pts);
  SchedulerConfig sc2;
  sc2.policy = Policy::kTradeoff;
  BatchScheduler sched2(plain, sc2);
  EXPECT_EQ(sched2.replication_controller(), nullptr);
}

TEST(Scheduler, ConcurrentProducersAllServed) {
  auto cfg = small_cfg();
  const auto pts = gen_uniform({.n = 1024, .dim = 2, .seed = 10});
  core::PimKdTree tree(cfg, pts);
  SchedulerConfig sc;
  sc.policy = Policy::kDeadline;
  sc.deadline_ticks = 10'000;  // ns; background clock
  BatchScheduler sched(tree, sc);
  sched.start();

  const std::size_t kProducers = 4, kPer = 200;
  std::atomic<std::size_t> ok{0};
  std::vector<std::thread> ts;
  for (std::size_t p = 0; p < kProducers; ++p)
    ts.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPer; ++i) {
        auto f = sched.submit(Request::knn(pts[(p * kPer + i) % 1024], 4), 0);
        const Response r = f.get();
        if (r.ok() && r.neighbors.size() == 4) ok.fetch_add(1);
      }
    });
  for (auto& t : ts) t.join();
  sched.stop();
  EXPECT_EQ(ok.load(), kProducers * kPer);
  const ServeStats st = sched.stats();
  EXPECT_EQ(st.completed, kProducers * kPer);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.completed + st.rejected, st.submitted);
}

// --- Ledger equivalence: served vs hand-batched --------------------------------

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return h * 1000003ull + v;
}

std::uint64_t ledger_hash(const core::PimKdTree& tree) {
  const auto s = tree.metrics().snapshot();
  std::uint64_t h = 0;
  h = mix64(h, s.cpu_work);
  h = mix64(h, s.pim_work);
  h = mix64(h, s.pim_time);
  h = mix64(h, s.communication);
  h = mix64(h, s.comm_time);
  h = mix64(h, s.rounds);
  for (const auto w : tree.metrics().lifetime_module_work()) h = mix64(h, w);
  for (const auto c : tree.metrics().lifetime_module_comm()) h = mix64(h, c);
  h = mix64(h, tree.metrics().total_storage());
  return h;
}

TEST(Scheduler, LedgerMatchesHandBatchedRun) {
  // The serving layer must add zero model cost: dispatching a stream through
  // the scheduler charges the ledger exactly as hand-issuing the same groups
  // against a fresh tree would (acceptance criterion; DESIGN.md §8).
  WorkloadSpec spec = mix_spec(MixKind::kUpdateHeavy);
  spec.initial_points = 2000;
  spec.requests = 600;
  spec.seed = 21;
  const ServeWorkload w = gen_serve_workload(spec);

  auto cfg = small_cfg(16);
  const std::size_t kBatch = 64;

  // Served run.
  std::uint64_t served_hash = 0;
  std::vector<BatchLog> log;
  {
    core::PimKdTree tree(cfg, w.initial);
    SchedulerConfig sc;
    sc.policy = Policy::kFixedSize;
    sc.batch_size = kBatch;
    BatchScheduler sched(tree, sc);
    std::vector<std::future<Response>> futs;
    futs.reserve(w.ops.size());
    for (const WorkloadOp& op : w.ops)
      futs.push_back(sched.submit(to_request(op), op.tick));
    sched.pump(w.ops.size());
    sched.flush(w.ops.size());
    for (auto& f : futs) ASSERT_TRUE(f.get().ok());
    log = sched.batch_log();
    served_hash = ledger_hash(tree);
  }

  // Hand-batched run: slice the same stream at the logged batch boundaries
  // and issue each epoch's groups directly, in the scheduler's canonical
  // order (knn groups by (k,eps) first appearance; reads before updates).
  {
    core::PimKdTree tree(cfg, w.initial);
    std::size_t at = 0;
    for (const BatchLog& b : log) {
      const std::size_t take = b.size();
      ASSERT_LE(at + take, w.ops.size());
      std::vector<Point> knn_q;
      std::vector<Point> ins;
      std::vector<PointId> del;
      for (std::size_t i = at; i < at + take; ++i) {
        const WorkloadOp& op = w.ops[i];
        switch (op.kind) {
          case OpKind::kKnn: knn_q.push_back(op.point); break;
          case OpKind::kInsert: ins.push_back(op.point); break;
          case OpKind::kErase: del.push_back(op.id); break;
          default: FAIL() << "unexpected op in update_heavy mix";
        }
      }
      // update_heavy has a single knn group (one (k,eps) key).
      if (!knn_q.empty()) (void)tree.knn(knn_q, spec.knn_k, spec.knn_eps);
      if (!ins.empty()) (void)tree.insert(ins);
      if (!del.empty()) tree.erase(del);
      at += take;
    }
    ASSERT_EQ(at, w.ops.size());
    EXPECT_EQ(ledger_hash(tree), served_hash)
        << "serving layer changed the cost ledger vs hand-batched execution";
  }
}

// --- Cross-thread-count determinism (subprocess) ------------------------------

std::string self_exe() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

std::string run_child(const std::string& exe, int threads) {
  const std::string cmd = "PIMKD_THREADS=" + std::to_string(threads) + " '" +
                          exe + "' --serve-child";
  std::FILE* p = popen(cmd.c_str(), "r");
  if (!p) return {};
  std::string out;
  char buf[512];
  while (std::fgets(buf, sizeof buf, p)) out += buf;
  const int rc = pclose(p);
  EXPECT_EQ(rc, 0) << "child failed: " << cmd;
  return out;
}

TEST(ServeDeterminism, BatchesResultsAndLedgerInvariantAcrossThreadCounts) {
  const std::string exe = self_exe();
  ASSERT_FALSE(exe.empty());
  const std::string out1 = run_child(exe, 1);
  const std::string out8 = run_child(exe, 8);
  ASSERT_FALSE(out1.empty());
  EXPECT_EQ(out1, out8)
      << "served batch sequence / results / ledger diverged across "
         "PIMKD_THREADS";
}

// Full pipeline at fixed submission order and virtual ticks: every op kind,
// a Zipfian key stream, and the tradeoff policy with a deadline fallback.
// Prints the batch log, a result hash, and the ledger hashes — all of which
// must be invariant under PIMKD_THREADS.
int serve_child() {
  WorkloadSpec spec;
  spec.mix = MixKind::kScanHeavy;
  spec.initial_points = 6000;
  spec.requests = 1500;
  spec.seed = 33;
  spec.zipf_theta = 0.99;
  spec.f_knn = 0.35;
  spec.f_range = 0.20;
  spec.f_radius = 0.10;
  spec.f_radius_count = 0.10;
  spec.f_insert = 0.15;
  spec.f_erase = 0.10;
  const ServeWorkload w = gen_serve_workload(spec);

  core::PimKdConfig cfg;
  cfg.dim = 2;
  cfg.leaf_cap = 8;
  cfg.sigma = 64;
  cfg.system.num_modules = 32;
  cfg.system.cache_words = 1 << 22;
  cfg.system.seed = 33;
  core::PimKdTree tree(cfg, w.initial);

  SchedulerConfig sc;
  sc.policy = Policy::kTradeoff;
  sc.batch_size = 32;
  sc.max_batch = 512;
  sc.deadline_ticks = 200;
  BatchScheduler sched(tree, sc);

  std::vector<std::future<Response>> futs;
  futs.reserve(w.ops.size());
  for (const WorkloadOp& op : w.ops) {
    futs.push_back(sched.submit(to_request(op), op.tick));
    sched.pump(op.tick);
  }
  sched.flush(w.ops.size());

  std::uint64_t rh = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    rh = mix64(rh, static_cast<std::uint64_t>(r.kind));
    rh = mix64(rh, r.epoch);
    rh = mix64(rh, r.ok() ? 1 : 0);
    rh = mix64(rh, r.inserted_id == kInvalidPoint ? 0 : r.inserted_id + 1);
    rh = mix64(rh, r.erased ? 1 : 0);
    for (const auto& nb : r.neighbors) rh = mix64(rh, nb.id);
    for (const auto id : r.ids) rh = mix64(rh, id);
    rh = mix64(rh, r.count);
  }
  std::string batches;
  for (const BatchLog& b : sched.batch_log()) {
    batches += b.to_string();
    batches += '\n';
  }
  const ServeStats st = sched.stats();
  std::printf("%s", batches.c_str());
  std::printf("completed=%llu batches=%llu epochs=%llu results=%llu "
              "ledger=%llu size=%zu nodes=%zu inv=%d\n",
              (unsigned long long)st.completed,
              (unsigned long long)st.batches, (unsigned long long)st.epochs,
              (unsigned long long)rh, (unsigned long long)ledger_hash(tree),
              tree.size(), tree.num_nodes(), tree.check_invariants() ? 1 : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--serve-child")
    return serve_child();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
