#include "serve/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "util/stats.hpp"

namespace pimkd::serve {

namespace {

// Ticks come from the caller (virtual time) or a clock; neither is
// guaranteed monotone w.r.t. a given request's submit stamp, so latency
// differences saturate at 0 instead of wrapping.
std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void validate_request(const Request& r, int dim) {
  switch (r.kind) {
    case OpKind::kInsert:
      validate_point(r.point, dim, "serve.insert");
      break;
    case OpKind::kErase:
      if (r.id == kInvalidPoint)
        throw std::invalid_argument("serve.erase: invalid point id");
      break;
    case OpKind::kKnn:
      validate_point(r.point, dim, "serve.knn");
      if (r.k == 0) throw std::invalid_argument("serve.knn: k must be >= 1");
      if (!(r.eps >= 0.0))
        throw std::invalid_argument("serve.knn: eps must be >= 0");
      break;
    case OpKind::kRange:
      validate_box(r.box, dim, "serve.range");
      break;
    case OpKind::kRadius:
      validate_point(r.point, dim, "serve.radius");
      validate_radius(r.radius, "serve.radius");
      break;
    case OpKind::kRadiusCount:
      validate_point(r.point, dim, "serve.radius_count");
      validate_radius(r.radius, "serve.radius_count");
      break;
  }
}

}  // namespace

std::string BatchLog::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "e=%llu t=%llu r=%c i=%u d=%u k=%u g=%u a=%u c=%u m=%u",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(tick), reason, inserts, erases,
                knns, ranges, radii, radius_counts,
                mode_switch ? 1u : 0u);
  return std::string(buf);
}

BatchScheduler::BatchScheduler(core::PimKdTree& tree, SchedulerConfig cfg)
    : tree_(tree), cfg_(std::move(cfg)) {
  if (cfg_.batch_size == 0) cfg_.batch_size = 1;
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  cfg_.batch_size = std::min(cfg_.batch_size, cfg_.max_batch);
  if (cfg_.policy == Policy::kAdaptive)
    controller_ = std::make_unique<core::AdaptiveReplicationController>(
        tree_, cfg_.replication);
}

BatchScheduler::~BatchScheduler() { stop(); }

void BatchScheduler::reject(Request&& r, std::uint64_t now_tick,
                            const char* why) {
  Response resp;
  resp.kind = r.kind;
  resp.error = why;
  resp.submit_tick = now_tick;
  resp.dispatch_tick = now_tick;
  resp.complete_tick = now_tick;
  r.promise.set_value(std::move(resp));
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

std::future<Response> BatchScheduler::submit(Request r,
                                             std::uint64_t now_tick) {
  r.submit_tick = now_tick;
  std::future<Response> fut = r.promise.get_future();
  try {
    validate_request(r, tree_.config().dim);
  } catch (const std::exception& ex) {
    reject(std::move(r), now_tick, ex.what());
    return fut;
  }
  if (closed_.load(std::memory_order_acquire)) {
    reject(std::move(r), now_tick, "serve: scheduler stopped");
    return fut;
  }
  queue_.push(std::move(r));
  submitted_.fetch_add(1, std::memory_order_release);
  return fut;
}

std::size_t BatchScheduler::pump(std::uint64_t now_tick) {
  std::lock_guard<std::mutex> lk(mu_);
  return pump_locked(now_tick, /*flush_all=*/false);
}

std::size_t BatchScheduler::flush(std::uint64_t now_tick) {
  std::lock_guard<std::mutex> lk(mu_);
  return pump_locked(now_tick, /*flush_all=*/true);
}

std::size_t BatchScheduler::pump_locked(std::uint64_t now, bool flush_all) {
  last_tick_ = std::max(last_tick_, now);
  Request r;
  while (queue_.pop(r)) pending_.push_back(std::move(r));
  std::size_t completed = 0;
  for (;;) {
    char reason = '?';
    const std::size_t take = due_batch(now, flush_all, reason);
    if (take == 0) break;
    completed += dispatch(take, now, reason);
  }
  return completed;
}

std::size_t BatchScheduler::tradeoff_target(const core::PimKdConfig& cfg,
                                            std::size_t P, std::size_t n,
                                            std::size_t lo, std::size_t hi) {
  const int logstar = log_star2(static_cast<double>(std::max<std::size_t>(P, 2)));
  const int G = cfg.cached_groups < 0 ? logstar
                                      : std::min(cfg.cached_groups, logstar);
  // Per-query search communication floor of the G-group variant (Thm 5.1):
  // hops ~ G + log^(G) P. Batches below n / 2^hops still pay the
  // log2(n/S) > hops LeafSearch alternative, so grow to S*; batches above it
  // buy no further per-query communication, only latency.
  const double hops = static_cast<double>(G) +
                      ilog2(static_cast<double>(std::max<std::size_t>(P, 2)), G);
  const double nn = static_cast<double>(std::max<std::size_t>(n, 1));
  const double star = nn / std::pow(2.0, hops);
  const auto target = static_cast<std::size_t>(std::max(1.0, star));
  return std::clamp(target, std::min(lo, hi), hi);
}

std::size_t BatchScheduler::target_batch_size() const {
  // Serialized with dispatch: the tradeoff target reads the live tree size.
  std::lock_guard<std::mutex> lk(mu_);
  switch (cfg_.policy) {
    case Policy::kFixedSize:
      return cfg_.batch_size;
    case Policy::kDeadline:
      return cfg_.max_batch;
    case Policy::kTradeoff:
    case Policy::kAdaptive:
      return tradeoff_target(tree_.config(), tree_.P(), tree_.size(),
                             cfg_.batch_size, cfg_.max_batch);
  }
  return cfg_.batch_size;
}

std::size_t BatchScheduler::due_batch(std::uint64_t now, bool flush_all,
                                      char& reason) const {
  if (pending_.empty()) return 0;
  if (flush_all) {
    reason = 'f';
    return std::min(pending_.size(), cfg_.max_batch);
  }
  std::size_t target = cfg_.max_batch;
  switch (cfg_.policy) {
    case Policy::kFixedSize:
      target = cfg_.batch_size;
      break;
    case Policy::kDeadline:
      target = cfg_.max_batch;
      break;
    case Policy::kTradeoff:
    case Policy::kAdaptive:
      target = tradeoff_target(tree_.config(), tree_.P(), tree_.size(),
                               cfg_.batch_size, cfg_.max_batch);
      break;
  }
  if (pending_.size() >= target) {
    reason = 's';
    return target;
  }
  if (cfg_.deadline_ticks > 0 || cfg_.policy == Policy::kDeadline) {
    // Oldest-waiter deadline (deadline_ticks == 0 under kDeadline means
    // "dispatch whatever is pending on every pump").
    if (sat_sub(now, pending_.front().submit_tick) >= cfg_.deadline_ticks) {
      reason = 'd';
      return std::min(pending_.size(), cfg_.max_batch);
    }
  }
  return 0;
}

void BatchScheduler::run_reads(std::vector<Request>& batch,
                               std::vector<Response>& resp,
                               std::uint64_t epoch) {
  // The "snapshot" of epoch e is the live tree itself: updates admitted in
  // this epoch have not been applied yet, so the host mirror *is* the
  // epoch-e state, byte-exact, and every read charges the ledger exactly as
  // a hand-issued batch would. The mutation-epoch hook pins this down.
  const std::uint64_t mver = tree_.mutation_epoch();

  // Canonical grouping and dispatch live in PimKdTree::query() (promoted
  // from this function — the ledger sequence is unchanged); here we only
  // slice off the delivery bookkeeping and merge the result payloads back.
  std::vector<core::Request> ops;
  ops.reserve(batch.size());
  for (const Request& r : batch)
    ops.push_back(static_cast<const core::Request&>(r));
  std::vector<Response> out = tree_.query(ops);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_update(batch[i].kind)) continue;  // applied later (run_updates)
    resp[i].error = std::move(out[i].error);
    resp[i].neighbors = std::move(out[i].neighbors);
    resp[i].ids = std::move(out[i].ids);
    resp[i].count = out[i].count;
  }

  // Reads never mutate; if this fires, something outside the scheduler
  // touched the tree mid-epoch and the snapshot promise is broken.
  assert(tree_.mutation_epoch() == mver &&
         "tree mutated during an epoch's read phase");
  (void)mver;
  (void)epoch;
}

void BatchScheduler::run_updates(std::vector<Request>& batch,
                                 std::vector<Response>& resp, BatchLog& log) {
  std::vector<std::size_t> ins_members;
  std::vector<std::size_t> del_members;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].kind == OpKind::kInsert) ins_members.push_back(i);
    if (batch[i].kind == OpKind::kErase) del_members.push_back(i);
  }
  bool changed = false;
  if (!ins_members.empty()) {
    std::vector<Point> pts;
    pts.reserve(ins_members.size());
    for (const std::size_t i : ins_members) pts.push_back(batch[i].point);
    try {
      const std::vector<PointId> ids = tree_.insert(pts);
      for (std::size_t j = 0; j < ins_members.size(); ++j)
        resp[ins_members[j]].inserted_id = ids[j];
      changed = true;
    } catch (const std::exception& ex) {
      for (const std::size_t i : ins_members) resp[i].error = ex.what();
    }
  }
  if (!del_members.empty()) {
    std::vector<PointId> ids;
    ids.reserve(del_members.size());
    // Per-request verdict: the first claim of a live id in the batch wins
    // (duplicates of the same id in one epoch erase it once).
    std::unordered_set<PointId> claimed;
    for (const std::size_t i : del_members) {
      const PointId id = batch[i].id;
      resp[i].erased = tree_.is_live(id) && claimed.insert(id).second;
      ids.push_back(id);
    }
    try {
      tree_.erase(ids);
      changed = changed || !claimed.empty();
    } catch (const std::exception& ex) {
      for (const std::size_t i : del_members) resp[i].error = ex.what();
    }
  }
  if (changed) {
    ++epoch_;
    ++stats_.epochs;
  }
  // Updates become visible in the (possibly unchanged) current epoch.
  for (const std::size_t i : ins_members) resp[i].epoch = epoch_;
  for (const std::size_t i : del_members) resp[i].epoch = epoch_;
  log.inserts = static_cast<std::uint32_t>(ins_members.size());
  log.erases = static_cast<std::uint32_t>(del_members.size());
}

std::size_t BatchScheduler::dispatch(std::size_t take, std::uint64_t now,
                                     char reason) {
  std::vector<Request> batch;
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }

  const std::uint64_t e = epoch_;
  BatchLog log;
  log.epoch = e;
  log.tick = now;
  log.reason = reason;

  std::vector<Response> resp(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    resp[i].kind = batch[i].kind;
    resp[i].epoch = e;  // reads keep this; run_updates overwrites for writes
    resp[i].submit_tick = batch[i].submit_tick;
    resp[i].dispatch_tick = now;
    stats_.queue_latency.record(sat_sub(now, batch[i].submit_tick));
    switch (batch[i].kind) {
      case OpKind::kKnn: ++log.knns; break;
      case OpKind::kRange: ++log.ranges; break;
      case OpKind::kRadius: ++log.radii; break;
      case OpKind::kRadiusCount: ++log.radius_counts; break;
      default: break;  // update counts set by run_updates
    }
  }

  run_reads(batch, resp, e);
  run_updates(batch, resp, log);

  if (controller_) {
    // Epoch boundary: updates are applied, the next batch's reads have not
    // started — the only point where re-replication cannot invalidate an
    // in-flight snapshot. Feeding batch op counts (not wall time) keeps the
    // controller a pure function of the request stream, so virtual-tick
    // runs stay deterministic at any PIMKD_THREADS.
    std::uint64_t reads = 0, writes = 0;
    for (const Request& r : batch)
      (is_update(r.kind) ? writes : reads) += 1;
    const auto decision = controller_->on_epoch(reads, writes);
    if (decision.switched) {
      // The tree's query-visible version moved (set_caching_mode bumped
      // mutation_epoch); advance the serve epoch so the invariant "one serve
      // epoch = one tree version" holds for the next batch's reads.
      ++epoch_;
      ++stats_.epochs;
      ++stats_.mode_switches;
      log.mode_switch = true;
    }
  }

  const std::uint64_t done = cfg_.clock ? cfg_.clock() : now;
  last_tick_ = std::max(last_tick_, done);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    resp[i].complete_tick = done;
    stats_.service_latency.record(sat_sub(done, resp[i].submit_tick));
    if (is_update(batch[i].kind)) ++stats_.updates;
    else ++stats_.reads;
    batch[i].promise.set_value(std::move(resp[i]));
  }

  ++stats_.batches;
  switch (reason) {
    case 's': ++stats_.dispatch_size; break;
    case 'd': ++stats_.dispatch_deadline; break;
    case 'f': ++stats_.dispatch_flush; break;
    default: break;
  }
  stats_.completed += batch.size();
  if (cfg_.record_batches) log_.push_back(log);
  return batch.size();
}

void BatchScheduler::start() {
  if (worker_.joinable()) return;
  if (!cfg_.clock) cfg_.clock = [] { return steady_ns(); };
  stop_worker_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { background_loop(); });
}

void BatchScheduler::background_loop() {
  while (!stop_worker_.load(std::memory_order_acquire)) {
    pump(cfg_.clock());
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void BatchScheduler::stop() {
  closed_.store(true, std::memory_order_release);
  if (worker_.joinable()) {
    stop_worker_.store(true, std::memory_order_release);
    worker_.join();
  }
  // Graceful drain: everything already accepted is executed and resolved.
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::uint64_t now = cfg_.clock ? cfg_.clock() : last_tick_;
    pump_locked(now, /*flush_all=*/true);
  }
  // Safety net for submissions that raced the close: resolve, never leak a
  // broken promise.
  Request r;
  while (queue_.pop(r))
    reject(std::move(r), last_tick_, "serve: scheduler stopped");
}

std::uint64_t BatchScheduler::epoch() const {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

ServeStats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServeStats s = stats_;
  s.submitted = submitted_.load(std::memory_order_acquire);
  s.rejected = rejected_.load(std::memory_order_acquire);
  return s;
}

std::vector<BatchLog> BatchScheduler::batch_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

}  // namespace pimkd::serve
