#include "kdtree/logtree.hpp"

#include <gtest/gtest.h>

#include "kdtree/bruteforce.hpp"
#include "util/generators.hpp"

namespace pimkd {
namespace {

// Live-point oracle maintained beside the LogTree.
struct Oracle {
  std::vector<Point> pts;
  std::vector<PointId> ids;
  int dim;

  std::vector<Neighbor> knn(const Point& q, std::size_t k) const {
    auto got = brute_knn(pts, dim, q, k);
    for (auto& nb : got) nb.id = ids[nb.id];
    return got;
  }
  std::vector<PointId> range(const Box& b) const {
    auto got = brute_range(pts, dim, b);
    std::vector<PointId> out;
    for (const auto i : got) out.push_back(ids[i]);
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST(LogTree, InsertThenQueryMatchesOracle) {
  const int dim = 2;
  LogTree tree({.dim = dim, .leaf_cap = 8});
  Oracle oracle{{}, {}, dim};
  Rng rng(1);
  for (int batch = 0; batch < 6; ++batch) {
    const auto pts =
        gen_uniform({.n = 100 + 37 * static_cast<std::size_t>(batch),
                     .dim = dim, .seed = 100 + static_cast<std::uint64_t>(batch)});
    const auto ids = tree.insert(pts);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      oracle.pts.push_back(pts[i]);
      oracle.ids.push_back(ids[i]);
    }
  }
  EXPECT_EQ(tree.size(), oracle.pts.size());
  const auto qs = gen_uniform_queries(oracle.pts, dim, 25, 7);
  for (const auto& q : qs) {
    const auto got = tree.knn(q, 5);
    const auto want = oracle.knn(q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_DOUBLE_EQ(got[i].sq_dist, want[i].sq_dist);
  }
}

TEST(LogTree, SubtreeCountIsLogarithmic) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 3000, .dim = 2, .seed = 3});
  for (std::size_t i = 0; i < pts.size(); i += 100)
    (void)tree.insert(std::span(pts).subspan(i, 100));
  // 3000 points at base granularity 8: around log2(3000/8) ~ 9 slots.
  EXPECT_LE(tree.num_subtrees(), 12u);
}

TEST(LogTree, EraseRemovesFromQueries) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 500, .dim = 2, .seed = 4});
  const auto ids = tree.insert(pts);
  // Erase every third point.
  std::vector<PointId> dead;
  for (std::size_t i = 0; i < ids.size(); i += 3) dead.push_back(ids[i]);
  tree.erase(dead);
  EXPECT_EQ(tree.size(), 500u - dead.size());

  Oracle oracle{{}, {}, 2};
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 3 == 0) continue;
    oracle.pts.push_back(pts[i]);
    oracle.ids.push_back(ids[i]);
  }
  const auto qs = gen_uniform_queries(pts, 2, 20, 5);
  for (const auto& q : qs) {
    const auto got = tree.knn(q, 4);
    const auto want = oracle.knn(q, 4);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i].id, want[i].id);
  }
}

TEST(LogTree, EraseHalfTriggersGlobalRebuild) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 1000, .dim = 2, .seed = 6});
  const auto ids = tree.insert(pts);
  std::vector<PointId> dead(ids.begin(), ids.begin() + 600);
  tree.erase(dead);
  EXPECT_EQ(tree.size(), 400u);
  // After the rebuild, a full-box range returns exactly the live points.
  const Box bb = bounding_box(pts, 2);
  EXPECT_EQ(tree.range(bb).size(), 400u);
}

TEST(LogTree, RangeAndRadiusMatchOracle) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 800, .dim = 2, .seed = 8});
  const auto ids = tree.insert(pts);
  Oracle oracle{pts, ids, 2};
  Rng rng(9);
  for (int t = 0; t < 10; ++t) {
    Box b = Box::empty(2);
    Point a;
    a[0] = rng.next_double() * 0.7;
    a[1] = rng.next_double() * 0.7;
    Point c = a;
    c[0] += 0.3;
    c[1] += 0.3;
    b.extend(a, 2);
    b.extend(c, 2);
    EXPECT_EQ(tree.range(b), oracle.range(b));
  }
  const auto radius_got = tree.radius(pts[0], 0.1);
  const auto radius_want = brute_radius(pts, 2, pts[0], 0.1);
  EXPECT_EQ(radius_got.size(), radius_want.size());
}

TEST(LogTree, LeafSearchCostGrowsWithSubtreeCount) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 2000, .dim = 2, .seed = 10});
  for (std::size_t i = 0; i < pts.size(); i += 50)
    (void)tree.insert(std::span(pts).subspan(i, 50));
  Point q;
  q[0] = 0.5;
  q[1] = 0.5;
  // LeafSearch probes every subtree: cost at least the number of subtrees.
  EXPECT_GE(tree.leaf_search_cost(q), tree.num_subtrees());
}

TEST(LogTree, EraseUnknownIdIgnored) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 50, .dim = 2, .seed = 11});
  (void)tree.insert(pts);
  const PointId bogus[] = {9999};
  tree.erase(bogus);
  EXPECT_EQ(tree.size(), 50u);
}

TEST(LogTree, DoubleEraseCountsOnce) {
  LogTree tree({.dim = 2, .leaf_cap = 8});
  const auto pts = gen_uniform({.n = 50, .dim = 2, .seed = 12});
  const auto ids = tree.insert(pts);
  const PointId victim[] = {ids[0]};
  tree.erase(victim);
  tree.erase(victim);
  EXPECT_EQ(tree.size(), 49u);
}

}  // namespace
}  // namespace pimkd
