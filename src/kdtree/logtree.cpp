#include "kdtree/logtree.hpp"

#include <algorithm>
#include <cassert>

namespace pimkd {

namespace {
constexpr std::size_t kBase = 8;  // slot i capacity = kBase << i
std::size_t capacity_of(std::size_t slot) { return kBase << slot; }
}  // namespace

std::size_t LogTree::num_subtrees() const {
  std::size_t c = 0;
  for (const auto& s : slots_)
    if (s.tree) ++c;
  return c;
}

std::vector<PointId> LogTree::insert(std::span<const Point> pts) {
  std::vector<PointId> new_ids;
  new_ids.reserve(pts.size());
  for (const Point& p : pts) {
    const auto id = static_cast<PointId>(all_points_.size());
    all_points_.push_back(p);
    alive_.push_back(1);
    new_ids.push_back(id);
  }
  live_ += pts.size();

  // Carry: fold slots into the batch until some slot can hold everything.
  std::vector<PointId> collect = new_ids;
  std::size_t j = 0;
  for (;;) {
    if (j >= slots_.size()) slots_.resize(j + 1);
    if (!slots_[j].tree && capacity_of(j) >= collect.size()) break;
    if (slots_[j].tree) {
      for (const PointId id : slots_[j].members)
        if (alive_[id]) collect.push_back(id);
      slots_[j].tree.reset();
      slots_[j].members.clear();
    }
    ++j;
  }
  if (!collect.empty()) {
    std::vector<Point> ps;
    ps.reserve(collect.size());
    for (const PointId id : collect) ps.push_back(all_points_[id]);
    slots_[j].tree = std::make_unique<StaticKdTree>(
        StaticKdTree::Config{cfg_.dim, cfg_.leaf_cap}, ps, collect);
    slots_[j].members = std::move(collect);
  }
  return new_ids;
}

void LogTree::erase(std::span<const PointId> ids) {
  for (const PointId id : ids) {
    if (id < alive_.size() && alive_[id]) {
      alive_[id] = 0;
      --live_;
      ++dead_;
    }
  }
  if (dead_ > 0 && dead_ >= live_) rebuild_all();
}

void LogTree::rebuild_all() {
  std::vector<PointId> survivors;
  survivors.reserve(live_);
  for (auto& s : slots_) {
    if (!s.tree) continue;
    for (const PointId id : s.members)
      if (alive_[id]) survivors.push_back(id);
    s.tree.reset();
    s.members.clear();
  }
  dead_ = 0;
  if (survivors.empty()) return;
  std::size_t j = 0;
  while (capacity_of(j) < survivors.size()) ++j;
  if (j >= slots_.size()) slots_.resize(j + 1);
  std::vector<Point> ps;
  ps.reserve(survivors.size());
  for (const PointId id : survivors) ps.push_back(all_points_[id]);
  slots_[j].tree = std::make_unique<StaticKdTree>(
      StaticKdTree::Config{cfg_.dim, cfg_.leaf_cap}, ps, survivors);
  slots_[j].members = std::move(survivors);
}

std::vector<Neighbor> LogTree::knn(const Point& q, std::size_t k) const {
  std::vector<Neighbor> merged;
  for (const auto& s : slots_) {
    if (!s.tree) continue;
    // Over-fetch by the number of tombstones that may pollute this tree's
    // answer, then filter; dead_ bounds the pollution across all trees.
    const std::size_t want = std::min(s.tree->size(), k + dead_);
    auto local = s.tree->knn(q, want);
    for (const Neighbor& nb : local)
      if (alive_[nb.id]) merged.push_back(nb);
  }
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.sq_dist != b.sq_dist ? a.sq_dist < b.sq_dist : a.id < b.id;
  };
  std::sort(merged.begin(), merged.end(), cmp);
  if (merged.size() > k) merged.resize(k);
  return merged;
}

std::vector<PointId> LogTree::range(const Box& box) const {
  std::vector<PointId> out;
  for (const auto& s : slots_) {
    if (!s.tree) continue;
    for (const PointId id : s.tree->range(box))
      if (alive_[id]) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PointId> LogTree::radius(const Point& q, Coord r) const {
  std::vector<PointId> out;
  for (const auto& s : slots_) {
    if (!s.tree) continue;
    for (const PointId id : s.tree->radius(q, r))
      if (alive_[id]) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t LogTree::leaf_search_cost(const Point& q) const {
  std::uint64_t cost = 0;
  for (const auto& s : slots_) {
    if (!s.tree) continue;
    const auto before = s.tree->counters.nodes_visited;
    (void)s.tree->leaf_search(q);
    cost += s.tree->counters.nodes_visited - before;
  }
  return cost;
}

KdQueryCounters LogTree::counters_total() const {
  KdQueryCounters total;
  for (const auto& s : slots_) {
    if (!s.tree) continue;
    total.nodes_visited += s.tree->counters.nodes_visited;
    total.leaves_visited += s.tree->counters.leaves_visited;
  }
  return total;
}

void LogTree::reset_counters() {
  for (auto& s : slots_)
    if (s.tree) s.tree->counters.reset();
}

}  // namespace pimkd
