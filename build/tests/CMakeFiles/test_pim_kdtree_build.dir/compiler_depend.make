# Empty compiler generated dependencies file for test_pim_kdtree_build.
# This may be replaced when dependencies are built.
