file(REMOVE_RECURSE
  "CMakeFiles/pimkd_core.dir/core/approx_counter.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/approx_counter.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/build.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/build.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/cursor.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/cursor.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/decomposition.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/decomposition.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/knn.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/knn.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/pim_kdtree.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/pim_kdtree.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/range.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/range.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/storage.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/storage.cpp.o.d"
  "CMakeFiles/pimkd_core.dir/core/update.cpp.o"
  "CMakeFiles/pimkd_core.dir/core/update.cpp.o.d"
  "libpimkd_core.a"
  "libpimkd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimkd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
