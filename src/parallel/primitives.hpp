// Parallel primitives used throughout the library, mirroring the toolbox the
// paper assumes on the host: parallel_for, reduce, prefix sum (scan), sample
// sort, semisort / group-by, filter and flatten. All are deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace pimkd {

inline constexpr std::size_t kDefaultGrain = 1024;

// parallel_for over [begin, end) with static chunking.
template <class F>
void parallel_for(std::size_t begin, std::size_t end, F&& fn,
                  std::size_t grain = kDefaultGrain) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t max_chunks = std::max<std::size_t>(pool.size() * 4, 1);
  const std::size_t chunk =
      std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t chunks = (n + chunk - 1) / chunk;
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  pool.run_bulk(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(lo + chunk, end);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

// parallel reduce of fn(i) over [begin, end) with associative combine.
template <class T, class F, class Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, F&& fn,
                  Combine&& combine, std::size_t grain = kDefaultGrain) {
  if (end <= begin) return identity;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t max_chunks = std::max<std::size_t>(pool.size() * 4, 1);
  const std::size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::vector<T> partial(chunks, identity);
  pool.run_bulk(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(lo + chunk, end);
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, fn(i));
    partial[c] = acc;
  });
  T out = identity;
  for (const T& p : partial) out = combine(out, p);
  return out;
}

// Exclusive prefix sum in place; returns the total.
std::uint64_t exclusive_scan(std::vector<std::uint64_t>& v);

// Parallel stable filter: keep(i) selects indices; output preserves order.
template <class Keep>
std::vector<std::size_t> parallel_filter_indices(std::size_t n, Keep&& keep) {
  std::vector<std::uint64_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = keep(i) ? 1 : 0; });
  std::vector<std::uint64_t> offsets = flags;
  const std::uint64_t total = exclusive_scan(offsets);
  std::vector<std::size_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offsets[i]] = i;
  });
  return out;
}

// Parallel comparison sort (divide-and-conquer merge over pool chunks).
template <class T, class Less>
void parallel_sort(std::vector<T>& v, Less less) {
  const std::size_t n = v.size();
  ThreadPool& pool = ThreadPool::instance();
  if (n < 4096 || pool.size() <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  const std::size_t chunks = std::min<std::size_t>(pool.size(), 64);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  pool.run_bulk(chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, n);
    if (lo < hi) std::sort(v.begin() + static_cast<std::ptrdiff_t>(lo),
                           v.begin() + static_cast<std::ptrdiff_t>(hi), less);
  });
  // Iterative pairwise merge.
  for (std::size_t width = chunk; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    std::vector<T> tmp(v.size());
    pool.run_bulk(pairs, [&](std::size_t pr) {
      const std::size_t lo = pr * 2 * width;
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
                 v.begin() + static_cast<std::ptrdiff_t>(mid),
                 v.begin() + static_cast<std::ptrdiff_t>(mid),
                 v.begin() + static_cast<std::ptrdiff_t>(hi),
                 tmp.begin() + static_cast<std::ptrdiff_t>(lo), less);
    });
    v.swap(tmp);
  }
}

// Semisort / group-by: groups items by key (arbitrary group order, stable
// within a group). Returns (group offsets, permuted indices): group g spans
// perm[offsets[g] .. offsets[g+1]).
struct GroupBy {
  std::vector<std::size_t> offsets;  // size = #groups + 1
  std::vector<std::size_t> perm;     // size = n
  std::vector<std::uint64_t> keys;   // size = #groups, key of each group
};
GroupBy group_by(const std::vector<std::uint64_t>& keys);

}  // namespace pimkd
