// Fault recovery and the distributed-tree integrity checker ("fsck"), plus
// the degraded-mode host fallbacks for queries.
//
// Recovery model: a crash wipes a module's physical state but the host keeps
// the authoritative mirror (NodePool + point store) and the copy registry
// (intent). recover(m) revives the module and re-ships everything the
// registry says it should hold, preferring surviving dual-way replicas as
// sources and falling back to the host store; the work and words are charged
// to Metrics inside a "recover" trace span, so recovery cost shows up in the
// JSONL trace like any other operation. check_integrity() then cross-checks
// intent against physical truth.
#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "core/pim_kdtree.hpp"
#include "pim/status.hpp"

namespace pimkd::core {

namespace {
// Bound the problem list so a badly damaged tree doesn't drown the caller.
constexpr std::size_t kMaxProblems = 32;

struct HeapCmp {
  bool operator()(const Neighbor& a, const Neighbor& b) const {
    return a.sq_dist != b.sq_dist ? a.sq_dist < b.sq_dist : a.id < b.id;
  }
};

bool higher(double prio, PointId id, double q_prio, PointId self) {
  return prio > q_prio || (prio == q_prio && id > self);
}
}  // namespace

// --- Recovery -----------------------------------------------------------------

PimKdTree::RecoveryReport PimKdTree::recover(std::size_t m) {
  RecoveryReport rep;
  rep.module = m;
  if (m >= sys_.P()) {
    std::ostringstream os;
    os << "recover: module " << m << " out of range (P=" << sys_.P() << ")";
    throw std::invalid_argument(os.str());
  }
  const WriteGate gate(*this);  // wait out in-flight pinned read phases
  if (sys_.module_alive(m)) {
    rep.integrity_ok = check_integrity().ok;
    return rep;
  }
  pim::TraceScope span(sys_.metrics(), "recover", 1);
  pim::RoundGuard round(sys_.metrics());
  sys_.revive_module(m);
  const DistStore::RecoverySummary sum = store_.rebuild_module(m);
  rep.copies = sum.copies;
  rep.words = sum.words;
  rep.from_replicas = sum.from_replicas;
  rep.from_host = sum.from_host;
  // Message-loss damage (stale counters on surviving replicas) is repaired in
  // the same pass, so post-recovery integrity covers both failure modes.
  rep.counters_resynced = store_.resync_counters();
  if (pim::TraceSink* t = sys_.metrics().trace_sink())
    t->record_recovery(m, rep.copies, rep.words, rep.from_replicas,
                       rep.from_host, rep.counters_resynced);
  rep.integrity_ok = check_integrity().ok;
  return rep;
}

std::vector<PimKdTree::RecoveryReport> PimKdTree::recover_all() {
  std::vector<RecoveryReport> out;
  for (const std::size_t m : sys_.dead_modules()) out.push_back(recover(m));
  return out;
}

std::uint64_t PimKdTree::resync_counters() {
  pim::TraceScope span(sys_.metrics(), "resync_counters", 1);
  pim::RoundGuard round(sys_.metrics());
  return store_.resync_counters();
}

// --- Integrity checker ("fsck") -------------------------------------------------

std::string PimKdTree::IntegrityReport::to_string() const {
  if (ok) return "integrity OK";
  std::ostringstream os;
  os << "integrity FAILED (" << problems.size() << " problem(s) recorded)";
  for (const std::string& p : problems) os << "\n  - " << p;
  return os.str();
}

PimKdTree::IntegrityReport PimKdTree::check_integrity() const {
  IntegrityReport rep;
  auto fail = [&](const std::string& msg) {
    rep.ok = false;
    if (rep.problems.size() < kMaxProblems) rep.problems.push_back(msg);
  };

  // Alive bitmap: a dead module is damage by definition (its registered
  // copies are physically missing until recover()).
  for (const std::size_t m : sys_.dead_modules()) {
    std::ostringstream os;
    os << "module m" << m << " is dead (unrecovered)";
    fail(os.str());
  }

  // Host bookkeeping: live_ matches the alive_ flags.
  std::size_t alive_count = 0;
  for (const char a : alive_)
    if (a) ++alive_count;
  if (alive_count != live_) {
    std::ostringstream os;
    os << "live_=" << live_ << " but " << alive_count << " alive flags";
    fail(os.str());
  }

  // Expected physical words per module, recomputed from the registry while
  // cross-checking every copy against the mirror.
  std::vector<std::uint64_t> expect_words(sys_.P(), 0);
  store_.for_each_registered([&](NodeId id,
                                 const std::vector<std::uint32_t>& mods) {
    if (!pool_.contains(id)) {
      std::ostringstream os;
      os << "registry entry for node " << id << " absent from the mirror";
      fail(os.str());
      return;
    }
    const NodeRec& rec = pool_.at(id);
    // Per-module ref multiplicity.
    std::unordered_map<std::uint32_t, std::uint32_t> refs;
    for (const std::uint32_t m : mods) ++refs[m];
    bool master_seen = false;
    for (const auto& [m, r] : refs) {
      if (m == store_.master_of(id)) master_seen = true;
      expect_words[m] += static_cast<std::uint64_t>(r) * node_words(cfg_.dim);
      if (rec.is_leaf())
        expect_words[m] +=
            static_cast<std::uint64_t>(pool_.cold(id).leaf_pts.size()) *
            point_words(cfg_.dim);
      if (!sys_.module_alive(m)) continue;  // missing by design; flagged above
      const ModuleState& st = sys_.module(m);
      const auto cit = st.nodes.find(id);
      if (cit == st.nodes.end()) {
        std::ostringstream os;
        os << "node " << id << " registered on m" << m
           << " but physically absent";
        fail(os.str());
        continue;
      }
      if (cit->second.refs != r) {
        std::ostringstream os;
        os << "node " << id << " on m" << m << ": refs=" << cit->second.refs
           << " registry says " << r;
        fail(os.str());
      }
      if (cit->second.counter != rec.counter) {
        std::ostringstream os;
        os << "node " << id << " on m" << m << ": replica counter "
           << cit->second.counter << " != canonical " << rec.counter
           << " (stale; resync_counters repairs)";
        fail(os.str());
      }
      if (rec.is_leaf()) {
        const auto lit = st.leaf_points.find(id);
        if (lit == st.leaf_points.end() ||
            lit->second != pool_.cold(id).leaf_pts) {
          std::ostringstream os;
          os << "leaf " << id << " payload on m" << m
             << (lit == st.leaf_points.end() ? " missing" : " desynced");
          fail(os.str());
        }
      }
    }
    if (!master_seen) {
      std::ostringstream os;
      os << "node " << id << " has no copy on its master m"
         << store_.master_of(id);
      fail(os.str());
    }
  });

  // Orphan physical copies (present on a module but not in the registry) and
  // storage-ledger reconciliation.
  for (std::size_t m = 0; m < sys_.P(); ++m) {
    if (!sys_.module_alive(m)) continue;
    const ModuleState& st = sys_.module(m);
    for (const auto& [id, copy] : st.nodes) {
      const auto& mods = store_.copy_modules(id);
      if (std::find(mods.begin(), mods.end(),
                    static_cast<std::uint32_t>(m)) == mods.end()) {
        std::ostringstream os;
        os << "orphan copy of node " << id << " on m" << m
           << " (not in registry)";
        fail(os.str());
      }
    }
    for (const auto& [id, pts] : st.leaf_points) {
      if (st.nodes.find(id) == st.nodes.end()) {
        std::ostringstream os;
        os << "orphan leaf payload for node " << id << " on m" << m;
        fail(os.str());
      }
    }
    const std::uint64_t ledger = sys_.metrics().module_storage(m);
    if (ledger != expect_words[m]) {
      std::ostringstream os;
      os << "storage ledger m" << m << ": " << ledger << " words, expected "
         << expect_words[m];
      fail(os.str());
    }
  }

  // Counter drift envelope (Lemma 3.6/3.7 smoke bound, as in
  // check_invariants) and basic counter sanity.
  pool_.for_each([&](const NodeRec& rec) {
    if (!(rec.counter >= 0.0) || !std::isfinite(rec.counter)) {
      std::ostringstream os;
      os << "node " << rec.id << ": counter " << rec.counter
         << " out of bounds";
      fail(os.str());
      return;
    }
    const double exact = static_cast<double>(rec.exact_size);
    const double slack =
        0.75 * std::max(exact, 1.0) + 8.0 * static_cast<double>(cfg_.leaf_cap);
    if (std::abs(rec.counter - exact) > slack) {
      std::ostringstream os;
      os << "node " << rec.id << ": counter " << rec.counter
         << " drifted beyond envelope of exact " << exact;
      fail(os.str());
    }
  });

  return rep;
}

// --- Degraded-mode host fallbacks ----------------------------------------------

std::vector<std::size_t> PimKdTree::query_start_modules() const {
  std::vector<std::size_t> out;
  out.reserve(sys_.P());
  if (!sys_.dead_module_count()) {
    for (std::size_t m = 0; m < sys_.P(); ++m) out.push_back(m);
    return out;
  }
  for (std::size_t m = 0; m < sys_.P(); ++m)
    if (sys_.module_alive(m)) out.push_back(m);
  return out;
}

void PimKdTree::host_knn_rec(pim::Metrics& led, NodeId nid, const Point& q,
                             std::vector<Neighbor>& heap, std::size_t k,
                             double prune) const {
  led.add_cpu_work(1);
  const NodeRec& n = pool_.at(nid);
  const Coord worst_in = heap.size() < k
                             ? std::numeric_limits<Coord>::infinity()
                             : heap.front().sq_dist;
  // Strict prune on the tie boundary — must mirror knn_rec exactly so the
  // degraded host path returns byte-identical results (see knn.cpp).
  if (n.box.sq_dist_to(q, cfg_.dim) * prune > worst_in) return;
  if (n.is_leaf()) {
    const NodeCold& nc = pool_.cold(nid);
    const std::vector<PointId>& pts = nc.leaf_pts;
    led.add_cpu_work(pts.size());
    // Same batched kernel as the in-PIM twin (knn.cpp): distances are
    // bit-identical per lane, consumption order is the scalar order.
    double d2[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t c = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_sq_dists(isa_, nc.soa, base, c, q.x.data(), cfg_.dim, d2);
      for (std::uint32_t j = 0; j < c; ++j) {
        const PointId id = pts[base + j];
        if (!alive_[id]) continue;
        const Neighbor cand{id, d2[j]};
        if (heap.size() < k) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end(), HeapCmp{});
        } else if (HeapCmp{}(cand, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), HeapCmp{});
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end(), HeapCmp{});
        }
      }
    }
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  const bool left_first = q[n.split_dim] < n.split_val;
  const NodeId first = left_first ? n.left : n.right;
  const NodeId second = left_first ? n.right : n.left;
  host_knn_rec(led, first, q, heap, k, prune);
  const Coord worst = heap.size() < k ? std::numeric_limits<Coord>::infinity()
                                      : heap.front().sq_dist;
  if (pool_.at(second).box.sq_dist_to(q, cfg_.dim) * prune <= worst)
    host_knn_rec(led, second, q, heap, k, prune);
}

void PimKdTree::host_dep_rec(pim::Metrics& led, NodeId nid, const Point& q,
                             double q_prio, PointId self,
                             Neighbor& best) const {
  led.add_cpu_work(1);
  const NodeRec& n = pool_.at(nid);
  const NodeCold& nc = pool_.cold(nid);
  if (nc.max_priority_id == kInvalidPoint ||
      !higher(nc.max_priority, nc.max_priority_id, q_prio, self) ||
      n.box.sq_dist_to(q, cfg_.dim) >= best.sq_dist)
    return;
  if (n.is_leaf()) {
    led.add_cpu_work(nc.leaf_pts.size());
    double d2s[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t c = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_sq_dists(isa_, nc.soa, base, c, q.x.data(), cfg_.dim, d2s);
      for (std::uint32_t j = 0; j < c; ++j) {
        const PointId id = nc.leaf_pts[base + j];
        if (!alive_[id] || !higher(priorities_[id], id, q_prio, self)) continue;
        const Coord d2 = d2s[j];
        if (d2 < best.sq_dist || (d2 == best.sq_dist && id < best.id))
          best = Neighbor{id, d2};
      }
    }
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  const bool left_first = q[n.split_dim] < n.split_val;
  const NodeId first = left_first ? n.left : n.right;
  const NodeId second = left_first ? n.right : n.left;
  host_dep_rec(led, first, q, q_prio, self, best);
  if (pool_.at(second).box.sq_dist_to(q, cfg_.dim) < best.sq_dist)
    host_dep_rec(led, second, q, q_prio, self, best);
}

void PimKdTree::host_range_rec(pim::Metrics& led, NodeId nid, const Box& box,
                               std::vector<PointId>& out) const {
  led.add_cpu_work(1);
  const NodeRec& n = pool_.at(nid);
  if (!box.intersects(n.box, cfg_.dim)) return;
  if (n.is_leaf()) {
    const NodeCold& nc = pool_.cold(nid);
    const std::vector<PointId>& pts = nc.leaf_pts;
    led.add_cpu_work(pts.size());
    std::uint8_t in[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t c = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_contains(isa_, nc.soa, base, c, box.lo.x.data(),
                             box.hi.x.data(), cfg_.dim, in);
      for (std::uint32_t j = 0; j < c; ++j) {
        const PointId id = pts[base + j];
        if (alive_[id] && in[j]) out.push_back(id);
      }
    }
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  host_range_rec(led, n.left, box, out);
  host_range_rec(led, n.right, box, out);
}

void PimKdTree::host_radius_rec(pim::Metrics& led, NodeId nid, const Point& q,
                                Coord r2, std::vector<PointId>* out,
                                std::size_t& cnt) const {
  led.add_cpu_work(1);
  const NodeRec& n = pool_.at(nid);
  if (!n.box.intersects_ball(q, r2, cfg_.dim)) return;
  if (n.is_leaf()) {
    const NodeCold& nc = pool_.cold(nid);
    const std::vector<PointId>& pts = nc.leaf_pts;
    led.add_cpu_work(pts.size());
    double d2[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t c = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_sq_dists(isa_, nc.soa, base, c, q.x.data(), cfg_.dim, d2);
      for (std::uint32_t j = 0; j < c; ++j) {
        const PointId id = pts[base + j];
        if (!alive_[id]) continue;
        if (d2[j] <= r2) {
          ++cnt;
          if (out) out->push_back(id);
        }
      }
    }
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  host_radius_rec(led, n.left, q, r2, out, cnt);
  host_radius_rec(led, n.right, q, r2, out, cnt);
}

}  // namespace pimkd::core
