#include "parallel/primitives.hpp"

#include <gtest/gtest.h>

#include "parallel/stage_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "util/random.hpp"

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace pimkd {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyAndSingle) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(5, 6, [&](std::size_t i) { EXPECT_EQ(i, 5u); ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, NestedDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { total.fetch_add(1); }, 1);
  }, 1);
  EXPECT_EQ(total.load(), 64);
}

TEST(RunBulk, PropagatesExceptionToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_bulk(64,
                             [](std::size_t i) {
                               if (i == 13)
                                 throw std::runtime_error("chunk 13");
                             }),
               std::runtime_error);
}

TEST(RunBulk, PropagatesOnInlinePaths) {
  ThreadPool pool(2);
  // chunks == 1 runs inline in the caller.
  EXPECT_THROW(pool.run_bulk(1, [](std::size_t) {
    throw std::invalid_argument("inline");
  }),
               std::invalid_argument);
  // A zero-worker pool also runs inline.
  ThreadPool serial(0);
  EXPECT_THROW(serial.run_bulk(8, [](std::size_t i) {
    if (i == 3) throw std::invalid_argument("serial");
  }),
               std::invalid_argument);
}

TEST(RunBulk, StopsHandingOutChunksAfterFailure) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    pool.run_bulk(10000, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("boom");
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      executed.fetch_add(1);
    });
    FAIL() << "expected run_bulk to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Chunk 0 fails almost immediately; once the failure is observed the
  // remaining chunks are claimed but skipped, so only the handful in flight
  // at that moment actually run.
  EXPECT_LT(executed.load(), 10000);
}

TEST(RunBulk, PoolUsableAfterException) {
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run_bulk(32,
                               [](std::size_t) {
                                 throw std::runtime_error("every chunk");
                               }),
                 std::runtime_error);
  }
  std::atomic<int> count{0};
  pool.run_bulk(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(RunBulk, NestedBulkPropagatesInnerException) {
  ThreadPool pool(2);
  // The inner (re-entrant) bulk runs inline in the worker; its exception must
  // surface through the outer chunk to the original caller.
  try {
    pool.run_bulk(8, [&](std::size_t outer) {
      pool.run_bulk(8, [outer](std::size_t inner) {
        if (outer == 2 && inner == 3) throw std::runtime_error("inner 2/3");
      });
    });
    FAIL() << "expected the inner exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "inner 2/3");
  }
  // The pool survives the nested failure.
  std::atomic<int> count{0};
  pool.run_bulk(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(RunBulk, NestedBulkInnerFailureDoesNotPoisonSiblings) {
  ThreadPool pool(4);
  // Only one outer chunk hosts a failing inner bulk; the others run their own
  // (successful) inner bulks to completion. One failure must not leak into a
  // sibling's bulk state.
  std::atomic<int> ok_chunks{0};
  EXPECT_THROW(
      pool.run_bulk(6,
                    [&](std::size_t outer) {
                      if (outer == 1) {
                        pool.run_bulk(4, [](std::size_t) {
                          throw std::runtime_error("poison");
                        });
                      } else {
                        pool.run_bulk(4, [&](std::size_t) {
                          ok_chunks.fetch_add(1);
                        });
                      }
                    }),
      std::runtime_error);
  // The surviving outer chunks each completed all 4 inner chunks.
  EXPECT_EQ(ok_chunks.load() % 4, 0);
  EXPECT_GT(ok_chunks.load(), 0);
}

TEST(RunBulk, ConcurrentThrowersRaceCleanly) {
  ThreadPool pool(4);
  // Every chunk throws "simultaneously": exactly one exception wins the race
  // and reaches the caller, and repeating the experiment never wedges or
  // crashes the pool.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> started{0};
    try {
      pool.run_bulk(64, [&](std::size_t i) {
        started.fetch_add(1);
        throw std::runtime_error("chunk " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      // The winner is one of the chunks that actually started.
      EXPECT_EQ(std::string(e.what()).rfind("chunk ", 0), 0u);
    }
    EXPECT_GE(started.load(), 1);
  }
  std::atomic<int> count{0};
  pool.run_bulk(100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(RunBulk, MixedThrowersAndWorkersConcurrently) {
  ThreadPool pool(4);
  // Throwing and non-throwing chunks interleave under contention; the
  // completed work is consistent (no double-executed or torn chunks).
  for (int round = 0; round < 10; ++round) {
    std::vector<std::atomic<int>> hits(256);
    try {
      pool.run_bulk(256, [&](std::size_t i) {
        if (i % 17 == 3) throw std::invalid_argument("thrower");
        hits[i].fetch_add(1);
      });
      FAIL() << "expected an exception";
    } catch (const std::invalid_argument&) {
    }
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_LE(hits[i].load(), 1) << "chunk " << i << " ran twice";
  }
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(parallel_for(0, 1000,
                            [](std::size_t i) {
                              if (i == 500)
                                throw std::invalid_argument("bad index");
                            },
                            1),
               std::invalid_argument);
}

TEST(ParallelReduce, Sum) {
  const std::size_t n = 50000;
  const auto sum = parallel_reduce<std::uint64_t>(
      0, n, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ExclusiveScan, SmallAndLarge) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 100000ul}) {
    std::vector<std::uint64_t> v(n, 0);
    for (std::size_t i = 0; i < n; ++i) v[i] = i % 5;
    std::vector<std::uint64_t> expect(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = acc;
      acc += i % 5;
    }
    const auto total = exclusive_scan(v);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(v, expect);
  }
}

TEST(ParallelFilter, KeepsOrder) {
  const std::size_t n = 30000;
  const auto idx =
      parallel_filter_indices(n, [](std::size_t i) { return i % 3 == 0; });
  ASSERT_EQ(idx.size(), (n + 2) / 3);
  for (std::size_t j = 0; j < idx.size(); ++j) EXPECT_EQ(idx[j], j * 3);
}

TEST(ParallelSort, SortsLargeVector) {
  Rng rng(4);
  std::vector<std::uint64_t> v(200000);
  for (auto& x : v) x = rng.next_u64() % 1000;
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  parallel_sort(v, std::less<>{});
  EXPECT_EQ(v, expect);
}

TEST(ParallelSort, SmallVector) {
  std::vector<int> v = {5, 3, 1, 4, 2};
  parallel_sort(v, std::less<>{});
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(GroupBy, GroupsAndStability) {
  const std::vector<std::uint64_t> keys = {7, 3, 7, 9, 3, 7};
  const auto g = group_by(keys);
  ASSERT_EQ(g.keys.size(), 3u);
  ASSERT_EQ(g.offsets.size(), 4u);
  EXPECT_EQ(g.perm.size(), keys.size());
  // Each group contains exactly the indices with its key, in input order.
  for (std::size_t j = 0; j < g.keys.size(); ++j) {
    std::size_t prev = 0;
    bool first = true;
    for (std::size_t t = g.offsets[j]; t < g.offsets[j + 1]; ++t) {
      EXPECT_EQ(keys[g.perm[t]], g.keys[j]);
      if (!first) EXPECT_GT(g.perm[t], prev);
      prev = g.perm[t];
      first = false;
    }
  }
}

TEST(GroupBy, Empty) {
  const auto g = group_by({});
  EXPECT_TRUE(g.keys.empty());
  EXPECT_EQ(g.offsets.size(), 1u);
}

// --- StageQueue (pipelined serve stages) ---------------------------------------

TEST(StageQueue, RunsClosuresInSubmissionOrder) {
  parallel::StageQueue q("t");
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) q.submit([&order, i] { order.push_back(i); });
  q.drain();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
  // drain() is a full barrier: reusable afterwards.
  q.submit([&order] { order.push_back(-1); });
  q.drain();
  EXPECT_EQ(order.back(), -1);
}

TEST(StageQueue, StageHandoffPreservesOrder) {
  // The scheduler's EXEC -> RESOLVE pattern: stage A forwards each item to
  // stage B; B must observe A's items in A's (= submission) order, with the
  // handoff providing the happens-before edge.
  parallel::StageQueue a("exec");
  parallel::StageQueue b("resolve");
  std::vector<int> seen;
  for (int i = 0; i < 100; ++i)
    a.submit([&b, &seen, i] { b.submit([&seen, i] { seen.push_back(i); }); });
  a.drain();
  b.drain();
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
}

TEST(StageQueue, StopIsIdempotentAndDrains) {
  parallel::StageQueue q("t");
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) q.submit([&ran] { ran.fetch_add(1); });
  q.stop();
  EXPECT_EQ(ran.load(), 50);
  q.stop();  // second stop is a no-op
  EXPECT_THROW(q.submit([] {}), std::logic_error);
}

TEST(StageQueue, ClosureExceptionRethrownFromDrain) {
  parallel::StageQueue q("t");
  std::atomic<bool> later{false};
  q.submit([] { throw std::runtime_error("boom"); });
  q.submit([&later] { later.store(true); });  // still runs after the throw
  EXPECT_THROW(q.drain(), std::runtime_error);
  EXPECT_TRUE(later.load());
  q.drain();  // the error is consumed; the queue is healthy again
  q.stop();
}

}  // namespace
}  // namespace pimkd
