// Horizontal scale-out: K independent PimKdTree instances behind a spatial
// routing tier (DESIGN.md §12).
//
// One PimKdTree models one host + P PIM modules; a Router runs K of them —
// each with its own cost ledger, trace sink and (via router::Frontend) its
// own serve::BatchScheduler and durability generation — behind a
// SpacePartition that owns the shard boundaries. The router speaks the same
// request vocabulary as the tree (core/query.hpp), so serve layers and
// benches run unmodified against either backend:
//
//   * insert/erase are point-routed: each update touches exactly one shard
//     (the partition cell owning the point / the id's home shard);
//   * range/radius scatter to the shards whose cell intersects the query
//     box/ball and gather by merging the per-shard id lists (sorted
//     ascending, global ids);
//   * kNN is two-phase: phase 1 runs on the home shard only; phase 2
//     re-queries just the shards whose cell intersects the candidate ball
//     (radius = the k-th phase-1 distance, +inf when the home shard held
//     fewer than k points) and the candidates merge by (sq_dist, id) — the
//     same total order the brute-force oracle uses, so boundary ties
//     resolve identically to a single tree.
//
// Ids: the router assigns global PointIds in submission order (exactly like
// a single tree would) and keeps the global <-> (shard, local) mapping;
// shard-local ids never escape. With K == 1 every code path degenerates to a
// pass-through over the single tree — results, ledger and trace are
// byte-identical to a bare PimKdTree, which tests/test_router.cpp pins via
// subprocesses.
//
// The routing tier itself runs on the front-end host and charges nothing to
// any shard ledger: per-shard costs remain exactly the paper-model costs of
// that shard's batches. Determinism: sub-batches preserve submission order,
// per-shard execution charges only that shard's ledger, and every merge is
// by a total order — so results, per-shard ledgers and traces are invariant
// under PIMKD_THREADS and under shard execution order (shards may execute
// their sub-batches concurrently; see RouterConfig::parallel_shards).
//
// Resharding: split_shard(s) picks the median split plane over shard s's
// live points, materializes a new shard from the right half (the same
// bulk-build path fault recovery uses to rebuild a module from the host
// mirror), erases the moved points from the source — both sides charged to
// their shard ledgers inside "reshard" trace spans — and bumps the partition
// epoch plus the router's mutation epoch, so epoch-stamped responses can
// never be confused across a boundary change.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/pim_kdtree.hpp"
#include "core/query.hpp"
#include "pim/status.hpp"
#include "router/partition.hpp"

namespace pimkd::router {

struct RouterConfig {
  // K: the number of shard trees. 1 is a valid (pass-through) deployment.
  std::size_t shards = 1;
  // Cap on the deterministic stride sample the partition is planned from.
  std::size_t sample_cap = 4096;
  // Execute per-shard sub-batches on one thread per shard (each shard only
  // touches its own tree and ledger, so results and per-shard ledgers are
  // identical either way; this buys wall-clock only). Single-shard batches
  // always run inline.
  bool parallel_shards = true;
  // Per-shard tree configuration. trace_path acts as a stem: shard s writes
  // to trace_path + ".shard<s>" (single-tree runs use the path as-is, so a
  // K=1 trace is byte-comparable to a bare tree's).
  core::PimKdConfig tree;

  // Named-field validation (mirrors PimKdConfig::validate): throws
  // std::invalid_argument naming the offending field for K == 0, K larger
  // than the initial point count, or an unusable sample budget. The
  // degenerate-sample case (ties collapse a cell to zero seed points) is
  // rejected by the partition build with the same field-naming convention.
  void validate(std::size_t initial_points) const;
};

class Router {
 public:
  // Builds the partition from a deterministic stride sample of `initial`,
  // routes the initial points, and bulk-constructs every shard tree.
  // Throws std::invalid_argument on config/partition errors (see
  // RouterConfig::validate).
  Router(const RouterConfig& cfg, std::span<const Point> initial);

  // Non-throwing twin: maps std::invalid_argument -> kInvalidArgument,
  // PimError -> its own status (same mapping as the tree's try_* shims).
  static Status try_create(const RouterConfig& cfg,
                           std::span<const Point> initial,
                           std::unique_ptr<Router>& out);

  // --- Introspection ---------------------------------------------------------
  std::size_t shards() const { return shards_.size(); }
  std::size_t size() const;  // total live points across shards
  // Router mutation epoch: bumped by every applied update batch and by every
  // reshard. Reads stamped with epoch e saw the state as of epoch e.
  std::uint64_t epoch() const { return epoch_; }
  const SpacePartition& partition() const { return part_; }
  core::PimKdTree& shard_tree(std::size_t s) { return *shards_[s].tree; }
  const core::PimKdTree& shard_tree(std::size_t s) const {
    return *shards_[s].tree;
  }
  const RouterConfig& config() const { return cfg_; }

  // --- Id mapping ------------------------------------------------------------
  bool is_live(PointId gid) const;
  // (shard, local id) of a global id; {shards(), kInvalidPoint} when gid was
  // never assigned.
  std::pair<std::size_t, PointId> locate(PointId gid) const;
  PointId to_global(std::size_t s, PointId local) const {
    return shards_[s].local_to_global[local];
  }
  // Total global ids ever assigned (live + dead).
  std::size_t next_point_id() const { return id_map_.size(); }

  // --- Batch-dynamic updates -------------------------------------------------
  // Point-routed single-shard fast path; global ids assigned in input order.
  std::vector<PointId> insert(std::span<const Point> pts);
  // Ids not live (or never assigned) are ignored, like PimKdTree::erase.
  void erase(std::span<const PointId> gids);

  // --- Scatter/gather reads --------------------------------------------------
  // Mirrors PimKdTree::query(): read kinds execute (each shard's sub-batch
  // goes through the shard tree's canonical grouping path, in submission
  // order), update kinds are returned untouched. Response ids/neighbors are
  // global; epoch stays 0, stamped by the serving layer (router::Frontend).
  std::vector<core::Response> query(std::span<const core::Request> reqs);

  // --- Serve-tier hooks (router::Frontend) -----------------------------------
  // Registers a shard-local insert performed through a per-shard scheduler
  // and returns the global id it was assigned. `local` must be the next
  // local id of shard s (ids arrive in per-shard submission order).
  PointId bind_inserted(std::size_t s, PointId local);
  // Bumps the router mutation epoch (the frontend calls this once per
  // applied update batch, mirroring what insert()/erase() do internally).
  void note_update() { ++epoch_; }

  // --- Resharding ------------------------------------------------------------
  struct ReshardReport {
    std::size_t source = 0;      // shard that was split
    std::size_t target = 0;      // new shard id (== shards() - 1 afterwards)
    std::size_t moved = 0;       // live points migrated
    int split_dim = 0;
    Coord split = 0;
    std::uint64_t moved_words = 0;      // comm charged building the new shard
    std::uint64_t partition_epoch = 0;  // partition epoch after the split
  };
  // Splits shard s at the median of its live points along the widest live
  // dimension. Throws PimError(kFailedPrecondition) when the shard holds
  // fewer than 2 live points or all live points coincide.
  ReshardReport split_shard(std::size_t s);

 private:
  struct Shard {
    std::unique_ptr<core::PimKdTree> tree;
    std::vector<PointId> local_to_global;  // local id -> global id
  };
  struct Loc {
    std::uint32_t shard = 0;
    PointId local = kInvalidPoint;
  };

  core::PimKdConfig shard_cfg(std::size_t s) const;
  // Runs fn(s) for every shard in `active` — concurrently (one thread per
  // shard) when cfg_.parallel_shards and more than one shard is active,
  // inline otherwise. Rethrows the first exception.
  void for_shards(const std::vector<std::size_t>& active,
                  const std::function<void(std::size_t)>& fn) const;

  RouterConfig cfg_;
  SpacePartition part_;
  std::vector<Shard> shards_;
  std::vector<Loc> id_map_;  // global id -> location
  std::uint64_t epoch_ = 0;
};

}  // namespace pimkd::router
