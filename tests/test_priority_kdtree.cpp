#include "clustering/priority_kdtree.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/generators.hpp"

namespace pimkd {
namespace {

Neighbor brute_dependent(std::span<const Point> pts,
                         std::span<const double> prio, const Point& q,
                         double q_prio, PointId self, int dim) {
  Neighbor best{kInvalidPoint, std::numeric_limits<Coord>::infinity()};
  for (PointId j = 0; j < pts.size(); ++j) {
    const bool higher = prio[j] > q_prio || (prio[j] == q_prio && j > self);
    if (!higher) continue;
    const Coord d2 = sq_dist(pts[j], q, dim);
    if (d2 < best.sq_dist || (d2 == best.sq_dist && j < best.id))
      best = Neighbor{j, d2};
  }
  return best;
}

struct Params {
  std::size_t n;
  std::uint64_t seed;
  bool discrete_priorities;
};

class PriorityKdTreeP : public ::testing::TestWithParam<Params> {};

TEST_P(PriorityKdTreeP, MatchesBruteForce) {
  const auto [n, seed, discrete] = GetParam();
  const auto pts = gen_uniform({.n = n, .dim = 2, .seed = seed});
  Rng rng(seed ^ 0xf);
  std::vector<double> prio(n);
  for (auto& p : prio)
    p = discrete ? static_cast<double>(rng.next_below(10)) : rng.next_double();
  PriorityKdTree tree({.dim = 2, .leaf_cap = 8}, pts, prio);
  for (PointId i = 0; i < std::min<std::size_t>(n, 100); ++i) {
    const auto got =
        tree.dependent_point(pts[i], prio[i], i);
    const auto want = brute_dependent(pts, prio, pts[i], prio[i], i, 2);
    EXPECT_EQ(got.id, want.id) << "query " << i;
    if (got.id != kInvalidPoint)
      EXPECT_DOUBLE_EQ(got.sq_dist, want.sq_dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PriorityKdTreeP,
                         ::testing::Values(Params{50, 1, false},
                                           Params{500, 2, false},
                                           Params{500, 3, true},
                                           Params{2000, 4, true}));

TEST(PriorityKdTree, GlobalMaxHasNoDependent) {
  const auto pts = gen_uniform({.n = 100, .dim = 2, .seed = 5});
  std::vector<double> prio(100, 1.0);
  prio[42] = 2.0;
  PriorityKdTree tree({.dim = 2, .leaf_cap = 8}, pts, prio);
  const auto got = tree.dependent_point(pts[42], prio[42], 42);
  EXPECT_EQ(got.id, kInvalidPoint);
}

TEST(PriorityKdTree, TieBrokenById) {
  // Equal priorities: the dependent point must have a larger id.
  const auto pts = gen_uniform({.n = 64, .dim = 2, .seed = 6});
  std::vector<double> prio(64, 1.0);
  PriorityKdTree tree({.dim = 2, .leaf_cap = 8}, pts, prio);
  for (PointId i = 0; i < 64; ++i) {
    const auto got = tree.dependent_point(pts[i], prio[i], i);
    if (i == 63) continue;  // may or may not exist depending on geometry
    if (got.id != kInvalidPoint) EXPECT_GT(got.id, i);
  }
  // The largest id with max priority has no dependent.
  EXPECT_EQ(tree.dependent_point(pts[63], prio[63], 63).id, kInvalidPoint);
}

TEST(PriorityKdTree, PruningTouchesFewNodes) {
  // With a unique global peak far away, most queries should prune heavily
  // relative to exhaustive traversal.
  const auto pts = gen_uniform({.n = 8192, .dim = 2, .seed = 7});
  Rng rng(8);
  std::vector<double> prio(8192);
  for (auto& p : prio) p = rng.next_double();
  PriorityKdTree tree({.dim = 2, .leaf_cap = 8}, pts, prio);
  tree.nodes_visited = 0;
  for (PointId i = 0; i < 200; ++i)
    (void)tree.dependent_point(pts[i], prio[i], i);
  // [46]: each priority 1NN touches O(1) leaves in expectation on friendly
  // data; generous bound: far fewer than 200 * num_nodes.
  EXPECT_LT(tree.nodes_visited, 200ull * 300ull);
}

}  // namespace
}  // namespace pimkd
