// Adaptive batch scheduler: the online front-end of the PIM-kd-tree.
//
// The paper's interface is batch-dynamic — its Table-1 bounds are stated per
// batch — but a production index serves a stream of single operations, so
// someone must decide when and how to form the batches. This scheduler:
//
//   * accepts single Insert/Erase/Knn/Range/Radius ops from any number of
//     client threads through a lock-free MPSC queue, one future per request;
//   * drains the queue and forms batches under a pluggable policy —
//     fixed-size, oldest-waiter deadline, or the §5-aware "tradeoff" policy
//     that targets the batch size at which the Theorem-5.1 communication/
//     space trade-off predicts per-query communication stops improving;
//   * executes each admitted batch against the tree with *epoch-versioned
//     read semantics*: all reads admitted in epoch e run first, against the
//     tree exactly as of epoch e (the live host mirror doubles as the
//     snapshot, byte-exact and ledger-charged — no state is copied), then
//     the epoch's updates are applied as one insert batch + one erase batch,
//     advancing the epoch. Reads admitted together with an erase of id X
//     therefore still see X — snapshot isolation at epoch granularity.
//
// Pipelined epoch execution (cfg.pipeline, DESIGN.md §8.5): the serial
// engine runs FORM -> READ -> WRITE of each epoch to completion on the
// consumer thread before forming the next. The pipelined engine splits the
// epoch into three stages on dedicated serial stage threads:
//
//   FORM    (consumer thread)  drain queue, cut batches, stamp responses;
//   EXEC    (one stage thread) epoch-e reads under a ReadPin, then epoch-e
//                              writes — while FORM is already cutting e+1;
//   RESOLVE (one stage thread) deliver read futures of epoch e while EXEC is
//                              still applying e's writes, then finalize.
//
// FORM never reads the (possibly mid-mutation) tree: it mirrors live-set
// size and id assignment in a projection, so policy decisions match the
// serial engine exactly. EXEC guards its read phase with
// PimKdTree::pin_reads(): any mutation that slips past the write gate
// invalidates the pin and the straddled reads are failed per-request instead
// of returning torn data. Because each stage is a single thread consuming a
// FIFO, every ledger charge, trace record, and batch-log append happens in
// the same order as the serial engine — in virtual-tick mode the two engines
// are byte-identical (tests/test_serve.cpp pins this via subprocesses); only
// wall-clock overlap differs. In pipelined mode the scheduler must be the
// tree's only mutator.
//
// Determinism: batch formation is a pure function of the submission order
// and ticks (the scheduler never reads a clock; callers pass `now` ticks),
// and the dispatch calls are exactly the tree's public batch entry points —
// so a fixed workload produces the same batch sequence, the same results,
// and a byte-identical cost ledger as an equivalent hand-batched run, at
// any PIMKD_THREADS (tests/test_serve.cpp pins both down).
//
// Threading contract: submit() from any thread; pump()/flush() from one
// consumer at a time (a mutex also lets the optional background thread and
// manual pumps coexist). Consumer ticks must be non-decreasing: a backwards
// tick is rejected with kFailedPrecondition (try_pump/try_flush) instead of
// silently saturating every age computation. submit() must not race with
// stop()/destruction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/migration.hpp"
#include "core/pim_kdtree.hpp"
#include "core/replication.hpp"
#include "durability/manager.hpp"
#include "parallel/mpsc_queue.hpp"
#include "parallel/stage_queue.hpp"
#include "pim/status.hpp"
#include "serve/request.hpp"
#include "util/latency_histogram.hpp"

namespace pimkd::serve {

enum class Policy : std::uint8_t {
  kFixedSize,  // dispatch exactly batch_size requests when available
  kDeadline,   // dispatch all pending when the oldest has waited deadline_ticks
  kTradeoff,   // dispatch at the §5-derived target size (deadline fallback)
  kAdaptive,   // compatibility alias: kTradeoff admission with
               // controllers.replication forced on (see ControllersConfig)
};

inline const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFixedSize: return "fixed";
    case Policy::kDeadline: return "deadline";
    case Policy::kTradeoff: return "tradeoff";
    case Policy::kAdaptive: return "adaptive";
  }
  return "?";
}

// The epoch-boundary controllers (core/controller.hpp) this scheduler runs
// after each epoch's updates are applied, in declaration order: replication
// first (it may change what the tree replicates), then migration (it re-places
// what exists). Each controller follows the same observe -> decide -> apply
// contract — decisions are pure functions of the op stream and the
// thread-invariant ledger, the apply step runs inside its own trace span and
// bumps the tree's mutation_epoch — so enabling any subset keeps serve runs
// byte-deterministic across PIMKD_THREADS (DESIGN.md §13).
struct ControllersConfig {
  // Adaptive replication: may switch the tree's CachingMode at epoch
  // boundaries (core/replication.hpp).
  bool replication = false;
  core::ReplicationConfig replication_cfg{};
  // Skew-resistant subtree migration: may move hot components off overloaded
  // modules at epoch boundaries (core/migration.hpp).
  bool migration = false;
  core::MigrationConfig migration_cfg{};
};

struct SchedulerConfig {
  Policy policy = Policy::kFixedSize;
  // kFixedSize: the exact batch size. kTradeoff: lower clamp on the target.
  std::size_t batch_size = 256;
  // Oldest-waiter deadline in ticks. Primary trigger for kDeadline; fallback
  // trigger for the size-based policies when > 0 (0 = no deadline there).
  // "Oldest" means the minimum submit tick over everything pending, not the
  // queue-order front: multi-producer stamping can interleave out of tick
  // order, and a batch must dispatch on the tick the oldest waiter *reaches*
  // the deadline.
  std::uint64_t deadline_ticks = 0;
  // Hard cap on a single dispatch (all policies).
  std::size_t max_batch = 8192;
  // Keep the per-batch BatchLog history (sizes + op mixes; tests/benches).
  bool record_batches = true;
  // Completion-time clock. When set, completion ticks and service latency
  // re-read it after execution (wall-clock mode; reads from a pipelined
  // epoch complete earlier than its writes); when null, completion ticks
  // equal the pump tick (virtual-time mode, fully deterministic). A clock
  // reading behind the dispatch tick is clamped (counted in
  // stats().clock_regressions), never subtracted into garbage.
  std::function<std::uint64_t()> clock;
  // Pipelined epoch execution (header comment / DESIGN.md §8.5). Changes
  // pump()/flush() return-value semantics to "requests admitted"; everything
  // observable (logs, ledger, traces, results) stays byte-identical in
  // virtual-tick mode.
  bool pipeline = false;
  // Max epochs formed but not yet finalized before FORM blocks (bounds the
  // futures + batches held in flight; stalls counted in pipeline_stalls).
  std::size_t pipeline_depth = 4;
  // Epoch-boundary controllers (any Policy; kAdaptive forces
  // controllers.replication on for source compatibility).
  ControllersConfig controllers{};
  // Crash consistency (src/durability/, DESIGN.md §10). When set, every
  // applied write batch is appended to the write-ahead log — and synced per
  // the manager's policy — on the EXEC stage *before* the batch's futures
  // resolve on RESOLVE, so an acked write is a durable write. Caching-mode
  // switches are logged too, and the manager's checkpoint cadence runs at
  // epoch boundaries. Fail-stop: if an append or sync fails, the batch's
  // update futures carry the error and every later write is rejected before
  // touching the tree (stats().wal_failures counts both). Non-owning; the
  // manager must outlive the scheduler and is not shared with another
  // scheduler.
  durability::Manager* durability = nullptr;

  // Throwing entry point ⇔ BatchScheduler::try_create Status twin
  // (DESIGN.md §13): names the offending field, delegates to the enabled
  // controllers' own validators. Note the constructor clamps the legacy
  // zero-valued size fields (batch_size, max_batch, pipeline_depth) to 1
  // *before* validating, so passing 0 there stays accepted for source
  // compatibility; calling validate() directly is strict.
  void validate() const;
};

// One formed batch: its epoch, dispatch tick, trigger, and op mix.
struct BatchLog {
  std::uint64_t epoch = 0;
  std::uint64_t tick = 0;
  char reason = '?';  // 's'ize target, 'd'eadline, 'f'lush
  bool mode_switch = false;  // replication controller switched CachingMode
  bool migration = false;    // migration controller moved component(s)
  std::uint32_t inserts = 0, erases = 0, knns = 0, ranges = 0, radii = 0,
                radius_counts = 0;
  std::uint32_t size() const {
    return inserts + erases + knns + ranges + radii + radius_counts;
  }
  std::string to_string() const;
};

struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;  // invalid at submit, or submitted after stop
  std::uint64_t batches = 0;
  std::uint64_t epochs = 0;  // update boundaries crossed
  std::uint64_t reads = 0, updates = 0;
  std::uint64_t mode_switches = 0;  // replication-controller mode changes
  std::uint64_t migrations = 0;     // components moved by the migration controller
  std::uint64_t dispatch_size = 0, dispatch_deadline = 0, dispatch_flush = 0;
  std::uint64_t ticks_rejected = 0;     // non-monotonic pump/flush ticks refused
  std::uint64_t clock_regressions = 0;  // completion clock read behind dispatch
  std::uint64_t read_straddles = 0;     // reads failed by ReadPin validation
  std::uint64_t pipeline_stalls = 0;    // FORM blocked on pipeline_depth
  std::uint64_t wal_frames = 0;         // applied batches appended to the WAL
  std::uint64_t wal_failures = 0;       // WAL errors + writes rejected after
  std::uint64_t checkpoints = 0;        // cadence checkpoints taken
  util::LatencyHistogram queue_latency;    // submit -> dispatch, ticks
  util::LatencyHistogram service_latency;  // submit -> completion, ticks

  // Folds another scheduler instance's stats into this one — the aggregation
  // a multi-instance deployment (router::Frontend) reports. Merge rules:
  //   * event counters (submitted..checkpoints) SUM — each field counts
  //     events that happened on exactly one instance, so the sum is the
  //     fleet-wide event count. That includes the per-instance fields that
  //     are NOT interchangeable across instances: `epochs` sums each
  //     instance's own update-boundary crossings (it is not a shared epoch
  //     number — the router's epoch is reported separately), `wal_frames`
  //     sums across per-shard WALs (each shard has its own log generation),
  //     `mode_switches` sums per-instance controller decisions, and
  //     `ticks_rejected` sums per-instance consumer-clock violations;
  //   * latency histograms merge bucket-wise (util::LatencyHistogram::merge),
  //     so fleet percentiles come from the pooled sample, never from
  //     averaging per-instance percentiles.
  void merge(const ServeStats& o);
};

class BatchScheduler {
 public:
  BatchScheduler(core::PimKdTree& tree, SchedulerConfig cfg);
  ~BatchScheduler();  // stop(): drains and resolves everything pending

  // Status twin of the constructor (DESIGN.md §13): config validation errors
  // come back as kInvalidArgument instead of an exception.
  static Status try_create(core::PimKdTree& tree, SchedulerConfig cfg,
                           std::unique_ptr<BatchScheduler>& out);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // --- Producer side (any thread) --------------------------------------------
  // Stamps `now_tick`, validates the payload (a malformed request fails alone,
  // immediately, without poisoning its batch) and enqueues. The returned
  // future is resolved exactly once.
  std::future<Response> submit(Request r, std::uint64_t now_tick);

  // --- Consumer side (one thread at a time) -----------------------------------
  // Drains the queue and dispatches every batch the policy says is due at
  // `now_tick`. Returns the number of requests completed (serial engine) or
  // admitted to the pipeline (pipelined engine). `now_tick` must be >= every
  // tick previously passed to pump()/flush(): try_pump rejects a backwards
  // tick with kFailedPrecondition (counted in stats().ticks_rejected); the
  // legacy pump() throws PimError for the same condition.
  std::size_t pump(std::uint64_t now_tick);
  Status try_pump(std::uint64_t now_tick, std::size_t* completed = nullptr);
  // pump(), then dispatch all remaining pending requests regardless of policy.
  // Under pipelining this also drains the pipeline: on return every admitted
  // request is resolved.
  std::size_t flush(std::uint64_t now_tick);
  Status try_flush(std::uint64_t now_tick, std::size_t* completed = nullptr);

  // Background mode: a thread that pumps on cfg.clock (defaults to a
  // steady_clock nanosecond tick when unset). stop() joins it, closes the
  // queue and flushes; requests submitted afterwards are rejected.
  void start();
  void stop();

  // --- Introspection -----------------------------------------------------------
  std::uint64_t epoch() const;
  // The size trigger currently in force (kTradeoff: recomputed from the live
  // size — the projection under pipelining, the tree otherwise). May block
  // while a flush() is draining the pipeline.
  std::size_t target_batch_size() const;
  ServeStats stats() const;
  std::vector<BatchLog> batch_log() const;
  // Controller introspection (nullptr when the controller is not enabled).
  // Controllers are consulted at epoch boundaries on the EXEC stage; reading
  // them between pumps is safe in serial mode, and after flush()/stop() in
  // pipelined mode.
  const core::AdaptiveReplicationController* replication_controller() const {
    return controller_.get();
  }
  const core::MigrationPlanner* migration_planner() const {
    return migration_.get();
  }

  // The §5 target: per-query search communication is Θ(G + log^(G) P) words
  // once batches are large enough that the Table-1 LeafSearch alternative
  // log(n/S) no longer dominates; solving log2(n/S) = G + log^(G) P gives
  // S* = n / 2^(G + log^(G) P), the smallest batch that reaches the
  // trade-off's communication floor. Clamped to [batch_size, max_batch].
  static std::size_t tradeoff_target(const core::PimKdConfig& cfg,
                                     std::size_t P, std::size_t n,
                                     std::size_t lo, std::size_t hi);

 private:
  // One epoch in flight: the batch, its responses, the index split, and the
  // log entry — shared between FORM, EXEC and RESOLVE. Disjoint-write
  // discipline: after EXEC hands the read indices to RESOLVE it only touches
  // update-indexed responses, so the two stages never write the same slot.
  struct EpochTask {
    std::vector<Request> batch;
    std::vector<Response> resp;
    std::vector<std::uint32_t> reads, updates;  // indices into batch
    BatchLog log;
    std::uint64_t form_tick = 0;
    // WAL payload gathered by run_updates (applied sub-batches only).
    bool wal_log = false;
    std::uint64_t wal_epoch = 0;  // tree mutation_epoch after applying
    std::uint64_t wal_base = 0;   // next_point_id before the inserts
    std::vector<Point> wal_inserts;
    std::vector<PointId> wal_erases;
  };

  Status pump_guarded(std::uint64_t now, bool flush_all, std::size_t* out);
  std::size_t pump_locked(std::uint64_t now, bool flush_all);
  // Size of the batch due now (0 = none); sets `reason`.
  std::size_t due_batch(std::uint64_t now, bool flush_all, char& reason) const;
  std::size_t live_size_locked() const;  // projection (pipelined) or tree
  void init_projection_locked();
  std::shared_ptr<EpochTask> form_task(std::size_t take, std::uint64_t now,
                                       char reason);
  std::size_t dispatch_serial(const std::shared_ptr<EpochTask>& t);
  void enqueue_pipelined(std::shared_ptr<EpochTask> t);
  void drain_pipeline();
  void execute_task(EpochTask& t);  // stamp epoch; pinned + validated reads
  void apply_task(EpochTask& t);    // updates + controller + WAL/checkpoint
  void log_durable(EpochTask& t, bool mode_switched);
  void run_reads(std::vector<Request>& batch, std::vector<Response>& resp);
  void run_updates(EpochTask& t);
  void resolve_reads(EpochTask& t, std::uint64_t done);
  void finalize_task(EpochTask& t, std::uint64_t done);
  std::uint64_t completion_tick(std::uint64_t form_tick);
  static void fail_requests(EpochTask& t,
                            const std::vector<std::uint32_t>& idx,
                            const char* why);
  void reject(Request&& r, std::uint64_t now_tick, const char* why);
  void background_loop();

  core::PimKdTree& tree_;
  SchedulerConfig cfg_;

  MpscQueue<Request> queue_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> ticks_rejected_{0};
  std::atomic<std::uint64_t> clock_regressions_{0};
  std::atomic<std::uint64_t> read_straddles_{0};
  std::atomic<std::uint64_t> pipeline_stalls_{0};
  // Sticky fail-stop: set on the first WAL append/sync error; later writes
  // are rejected before touching the tree (an unlogged mutation could never
  // be recovered, so applying it would silently widen the durability gap).
  std::atomic<bool> wal_failed_{false};

  // Formation state (consumer side), guarded by mu_.
  mutable std::mutex mu_;
  std::deque<Request> pending_;
  // Sliding-window minimum of pending submit ticks (the "oldest waiter"):
  // monotone deque, O(1) amortized per push/pop.
  std::deque<std::uint64_t> oldest_;
  std::uint64_t last_pump_tick_ = 0;
  // Pipelined FORM's mirror of the live set: what tree_.size() /
  // next_point_id() will be once every formed batch has been applied.
  bool proj_init_ = false;
  std::vector<char> proj_alive_;
  std::size_t proj_live_ = 0;

  // Execution-visible state shared by the serial engine, EXEC, RESOLVE and
  // the accessors, guarded by state_mu_ (leaf lock; acquired after mu_).
  mutable std::mutex state_mu_;
  std::uint64_t epoch_ = 0;
  ServeStats stats_;
  std::vector<BatchLog> log_;
  std::unique_ptr<core::AdaptiveReplicationController> controller_;
  std::unique_ptr<core::MigrationPlanner> migration_;
  // The enabled controllers in run order (non-owning views of the two above).
  std::vector<core::EpochController*> controllers_;

  // Pipeline stages + in-flight accounting (pipe_mu_ is a leaf lock).
  std::unique_ptr<parallel::StageQueue> exec_stage_;
  std::unique_ptr<parallel::StageQueue> resolve_stage_;
  std::mutex pipe_mu_;
  std::condition_variable pipe_cv_;
  std::size_t in_flight_ = 0;

  std::thread worker_;
  std::atomic<bool> stop_worker_{false};
};

}  // namespace pimkd::serve
