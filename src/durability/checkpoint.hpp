// Atomic, CRC-framed checkpoints of a PimKdTree (DESIGN.md §10).
//
// A checkpoint is the canonical serialization of everything a PimKdTree
// cannot recompute from its config: the host mirror (points, alive bitmap,
// priorities, NodePool slabs, delayed-construction roots), the algorithm RNG
// state (a restored tree must reproduce the original's *future* counter
// attempts and rebuild splits exactly, or replayed updates would diverge),
// and the DistStore copy registry plus the module-alive bitmap and any
// message-loss-stale replica counters. Metrics history is deliberately
// excluded — a restored tree re-charges its storage ledger from scratch and
// starts its communication/work counters at zero.
//
// File format ("PKDCKPT1" magic, then record_io.hpp framed records):
//
//   meta    config (trace_path / fault_spec cleared) + watermarks
//           (mutation_epoch, last WAL seq)
//   host    rng state, root, next node id, points, alive bitmap,
//           priorities, delayed components, live/peak counts
//   nodes   every live NodeRec + NodeCold, ascending NodeId
//   storage module-alive bitmap, copy registry (per-entry module vectors
//           verbatim — their order drives broadcast/drop sequences), stale
//           replica-counter exceptions
//   end     empty terminator
//
// Every iteration order above is canonical (ascending ids, fixed vectors),
// so serialization is byte-deterministic at any PIMKD_THREADS — the same
// invariant the library itself keeps. save() installs via tmp + fsync +
// rename, so a crash mid-save leaves the previous checkpoint intact.
//
// hash() is a 64-bit FNV-1a over the host/nodes/storage record bodies (meta
// — and with it the watermarks — excluded): two trees hash equal iff their
// durable state is identical, which is the soak test's acked-frontier
// equality check.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pim/status.hpp"

namespace pimkd::core {
class PimKdTree;
struct PimKdConfig;
}

namespace pimkd::durability {

class ByteWriter;
class ByteReader;

class Checkpoint {
 public:
  struct Info {
    std::uint64_t mutation_epoch = 0;  // tree version at capture
    std::uint64_t wal_seq = 0;         // last WAL frame folded in
    std::uint64_t state_hash = 0;      // FNV-1a over the durable state
    std::uint64_t bytes = 0;           // serialized size
  };

  // Serializes `tree` (under a ReadPin: concurrent reads keep running,
  // mutators wait) into a complete file image. `wal_seq` is the watermark
  // recorded in the meta record.
  static Status serialize(const core::PimKdTree& tree, std::uint64_t wal_seq,
                          std::vector<std::uint8_t>& out, Info* info = nullptr);

  // serialize() + atomic install at `path` (tmp + fsync + rename).
  static Status save(const core::PimKdTree& tree, const std::string& path,
                     std::uint64_t wal_seq, Info* info = nullptr);

  // Reads, CRC-verifies and rehydrates a checkpoint into a fresh tree. Any
  // framing or CRC failure is kCorruptState (a checkpoint is installed
  // atomically, so unlike a WAL tail it is never legitimately torn). The
  // restored tree passes check_invariants()/check_integrity() and serializes
  // back byte-identically.
  static Status load(const std::string& path,
                     std::unique_ptr<core::PimKdTree>& out,
                     Info* info = nullptr);

  // The durable-state hash of a live tree (== Info::state_hash of a
  // checkpoint taken now). Serializes to memory; intended for tests and
  // recovery verification, not hot paths.
  static std::uint64_t hash(const core::PimKdTree& tree);

 private:
  // Record-body writers/readers over the tree's private state (this class is
  // the PimKdTree friend; they must be members, not file-local helpers).
  static void write_meta(const core::PimKdTree& t, std::uint64_t wal_seq,
                         ByteWriter& w);
  static void write_host(const core::PimKdTree& t, ByteWriter& w);
  static void write_nodes(const core::PimKdTree& t, ByteWriter& w);
  static void write_storage(const core::PimKdTree& t, ByteWriter& w);
  static Status read_meta(ByteReader& r, core::PimKdConfig& cfg, Info& info);
  static Status read_host(ByteReader& r, core::PimKdTree& t,
                          std::uint64_t& next_node_id);
  static Status read_nodes(ByteReader& r, core::PimKdTree& t,
                           std::uint64_t next_node_id);
  static Status read_storage(ByteReader& r, core::PimKdTree& t);
};

}  // namespace pimkd::durability
