// Unified epoch-boundary controller API (DESIGN.md §13).
//
// Every feedback loop the serving stack runs between epochs — adaptive
// replication (core/replication.hpp), skew-resistant subtree migration
// (core/migration.hpp), the router's automatic split-shard policy
// (router/frontend.hpp) — follows the same shape:
//
//   observe  — sample thread-invariant ledger totals (pim::LoadReport and
//              friends: sums of commutative adds, byte-identical across
//              PIMKD_THREADS),
//   decide   — a pure function of those totals plus the controller's own
//              deterministic state (EWMAs, previous samples, epoch gates),
//   apply    — mutate the tree inside a named trace span, bumping
//              mutation_epoch so epoch-versioned reads never straddle the
//              change, and charging every shipped word to the ledger.
//
// The scheduler calls on_epoch_boundary() after an epoch's updates have been
// applied and before its batch is durably logged; `changed` feeds the batch
// log/stats, `words` the per-feature cost counters. Controllers must be
// deterministic: two runs that see the same epoch sequence make the same
// decisions, whatever the thread count.
#pragma once

#include <cstdint>

namespace pimkd::core {

class EpochController {
 public:
  virtual ~EpochController() = default;

  // Trace-span / stats label ("replication", "migration", "reshard", ...).
  virtual const char* name() const = 0;

  struct Outcome {
    bool changed = false;        // did apply mutate anything this epoch?
    std::uint64_t words = 0;     // communication charged by the apply step
  };

  // One observe→decide→apply step, called between epochs with the counts of
  // the epoch that just finished. Must only be called from the thread that
  // owns tree execution (the scheduler's EXEC stage or the control thread).
  virtual Outcome on_epoch_boundary(std::uint64_t reads,
                                    std::uint64_t writes) = 0;
};

}  // namespace pimkd::core
