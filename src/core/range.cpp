// Orthogonal range and radius queries (§4.3, Lemma 4.7) through the Cursor.
#include <algorithm>

#include "core/pim_kdtree.hpp"
#include "parallel/primitives.hpp"

namespace pimkd::core {

void PimKdTree::range_rec(Cursor& cur, NodeId nid, const Box& box,
                          std::vector<PointId>& out) const {
  if (!cur.can_visit(nid)) {
    // Degraded mode: subtree unreachable in-PIM; the host mirror answers
    // exactly (results are sorted afterwards either way).
    deg_subtrees_.fetch_add(1, std::memory_order_relaxed);
    host_range_rec(cur.ledger(), nid, box, out);
    return;
  }
  const std::size_t mark = cur.mark();
  cur.visit(nid);
  const NodeRec& n = pool_.at(nid);
  if (!box.intersects(n.box, cfg_.dim)) {
    cur.release(mark);
    return;
  }
  if (n.is_leaf()) {
    const NodeCold& nc = pool_.cold(nid);
    const std::vector<PointId>& pts = nc.leaf_pts;
    cur.charge_work(pts.size());
    // Batched containment test over the SoA mirror (bit-identical to
    // Box::contains per lane); the report loop keeps the scalar order.
    std::uint8_t in[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t cnt = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_contains(isa_, nc.soa, base, cnt, box.lo.x.data(),
                             box.hi.x.data(), cfg_.dim, in);
      for (std::uint32_t j = 0; j < cnt; ++j) {
        const PointId id = pts[base + j];
        if (alive_[id] && in[j]) out.push_back(id);
      }
    }
    cur.release(mark);
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  range_rec(cur, n.left, box, out);
  range_rec(cur, n.right, box, out);
  cur.release(mark);
}

std::vector<std::vector<PointId>> PimKdTree::range(
    std::span<const Box> boxes) {
  for (const Box& b : boxes) validate_box(b, cfg_.dim, "range");
  pim::TraceScope span(sys_.metrics(), "range", boxes.size());
  pim::RoundGuard round(sys_.metrics());
  std::vector<std::vector<PointId>> out(boxes.size());
  if (root_ == kNoNode) return out;
  const auto starts = query_start_modules();
  parallel_for(0, boxes.size(), [&](std::size_t i) {
    if (starts.empty()) {
      deg_queries_.fetch_add(1, std::memory_order_relaxed);
      host_range_rec(sys_.metrics(), root_, boxes[i], out[i]);
      std::sort(out[i].begin(), out[i].end());
      return;
    }
    const std::size_t start = starts[i % starts.size()];
    sys_.metrics().add_comm(start, kQueryWords);
    Cursor cur(cfg_, pool_, store_, sys_.metrics(), start);
    range_rec(cur, root_, boxes[i], out[i]);
    // Each reported point crosses off-chip once (result collection).
    sys_.metrics().add_comm(start, out[i].size());
    std::sort(out[i].begin(), out[i].end());
  }, /*grain=*/8);
  return out;
}

void PimKdTree::radius_rec(Cursor& cur, NodeId nid, const Point& q, Coord r2,
                           std::vector<PointId>* out, std::size_t& cnt) const {
  if (!cur.can_visit(nid)) {
    deg_subtrees_.fetch_add(1, std::memory_order_relaxed);
    host_radius_rec(cur.ledger(), nid, q, r2, out, cnt);
    return;
  }
  const std::size_t mark = cur.mark();
  cur.visit(nid);
  const NodeRec& n = pool_.at(nid);
  if (!n.box.intersects_ball(q, r2, cfg_.dim)) {
    cur.release(mark);
    return;
  }
  if (n.is_leaf()) {
    const NodeCold& nc = pool_.cold(nid);
    const std::vector<PointId>& pts = nc.leaf_pts;
    cur.charge_work(pts.size());
    double d2[kernels::kScanChunk];
    for (std::uint32_t base = 0; base < nc.soa.n; base += kernels::kScanChunk) {
      const std::uint32_t c = std::min(kernels::kScanChunk, nc.soa.n - base);
      kernels::leaf_sq_dists(isa_, nc.soa, base, c, q.x.data(), cfg_.dim, d2);
      for (std::uint32_t j = 0; j < c; ++j) {
        const PointId id = pts[base + j];
        if (!alive_[id]) continue;
        if (d2[j] <= r2) {
          ++cnt;
          if (out) out->push_back(id);
        }
      }
    }
    cur.release(mark);
    return;
  }
  pool_.prefetch(n.left);
  pool_.prefetch(n.right);
  radius_rec(cur, n.left, q, r2, out, cnt);
  radius_rec(cur, n.right, q, r2, out, cnt);
  cur.release(mark);
}

std::vector<std::vector<PointId>> PimKdTree::radius(
    std::span<const Point> centers, Coord r) {
  validate_points(centers, cfg_.dim, "radius");
  validate_radius(r, "radius");
  pim::TraceScope span(sys_.metrics(), "radius", centers.size());
  pim::RoundGuard round(sys_.metrics());
  std::vector<std::vector<PointId>> out(centers.size());
  if (root_ == kNoNode) return out;
  const auto starts = query_start_modules();
  parallel_for(0, centers.size(), [&](std::size_t i) {
    std::size_t cnt = 0;
    if (starts.empty()) {
      deg_queries_.fetch_add(1, std::memory_order_relaxed);
      host_radius_rec(sys_.metrics(), root_, centers[i], r * r, &out[i], cnt);
      std::sort(out[i].begin(), out[i].end());
      return;
    }
    const std::size_t start = starts[i % starts.size()];
    sys_.metrics().add_comm(start, kQueryWords);
    Cursor cur(cfg_, pool_, store_, sys_.metrics(), start);
    radius_rec(cur, root_, centers[i], r * r, &out[i], cnt);
    sys_.metrics().add_comm(start, out[i].size());
    std::sort(out[i].begin(), out[i].end());
  }, /*grain=*/8);
  return out;
}

std::vector<std::size_t> PimKdTree::radius_count(
    std::span<const Point> centers, Coord r) {
  validate_points(centers, cfg_.dim, "radius_count");
  validate_radius(r, "radius_count");
  pim::TraceScope span(sys_.metrics(), "radius_count", centers.size());
  pim::RoundGuard round(sys_.metrics());
  std::vector<std::size_t> out(centers.size(), 0);
  if (root_ == kNoNode) return out;
  const auto starts = query_start_modules();
  parallel_for(0, centers.size(), [&](std::size_t i) {
    if (starts.empty()) {
      deg_queries_.fetch_add(1, std::memory_order_relaxed);
      host_radius_rec(sys_.metrics(), root_, centers[i], r * r, nullptr,
                      out[i]);
      return;
    }
    const std::size_t start = starts[i % starts.size()];
    sys_.metrics().add_comm(start, kQueryWords);
    Cursor cur(cfg_, pool_, store_, sys_.metrics(), start);
    radius_rec(cur, root_, centers[i], r * r, nullptr, out[i]);
    sys_.metrics().add_comm(start, 1);  // count travels back
  }, /*grain=*/8);
  return out;
}

}  // namespace pimkd::core
