file(REMOVE_RECURSE
  "CMakeFiles/pimkd_parallel.dir/parallel/primitives.cpp.o"
  "CMakeFiles/pimkd_parallel.dir/parallel/primitives.cpp.o.d"
  "CMakeFiles/pimkd_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/pimkd_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libpimkd_parallel.a"
  "libpimkd_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimkd_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
