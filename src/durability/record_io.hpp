// Shared on-disk record framing for the durability layer (checkpoints,
// write-ahead log, manifest).
//
// Every durable file is a sequence of length-prefixed, CRC32C-framed records:
//
//   [u32 tag][u64 len][len bytes of body][u32 crc32c(tag|len|body)]
//
// The CRC covers the 12-byte header too, so a record whose length field was
// itself torn cannot point the reader at a plausible-looking tail. All
// integers are little-endian (the simulator targets x86-64; ByteWriter
// memcpys native representations, which the format documents as LE).
//
// File-level atomicity helpers: write_file_atomic (tmp + fsync + rename +
// directory fsync) gives all-or-nothing installs for checkpoints and the
// manifest; the WAL instead appends in place and relies on the per-record
// CRC to cut torn tails on recovery.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pim/status.hpp"
#include "util/crc32.hpp"

namespace pimkd::durability {

class ByteWriter {
 public:
  std::vector<std::uint8_t>& bytes() { return buf_; }
  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) { return raw(&v, sizeof v); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof v); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof v); }
  bool i32(std::int32_t& v) { return raw(&v, sizeof v); }
  bool f64(double& v) { return raw(&v, sizeof v); }
  bool raw(void* p, std::size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
};

// Appends one framed record (tag/len/body/crc) to `out`.
inline void append_record(std::vector<std::uint8_t>& out, std::uint32_t tag,
                          const std::vector<std::uint8_t>& body) {
  ByteWriter hdr;
  hdr.u32(tag);
  hdr.u64(static_cast<std::uint64_t>(body.size()));
  std::uint32_t crc = util::crc32c(0, hdr.bytes().data(), hdr.size());
  crc = util::crc32c(crc, body.data(), body.size());
  out.insert(out.end(), hdr.bytes().begin(), hdr.bytes().end());
  out.insert(out.end(), body.begin(), body.end());
  ByteWriter tail;
  tail.u32(crc);
  out.insert(out.end(), tail.bytes().begin(), tail.bytes().end());
}

// One parsed record: the body is a view into the caller's buffer.
struct Record {
  std::uint32_t tag = 0;
  const std::uint8_t* body = nullptr;
  std::size_t len = 0;
};

// Reads the record starting at `pos`; on success advances `pos` past it.
// Returns false (leaving `pos` unchanged) on a short read or CRC mismatch —
// the caller decides whether that is a torn tail (WAL) or corruption
// (checkpoint).
inline bool read_record(const std::vector<std::uint8_t>& buf, std::size_t& pos,
                        Record& out) {
  constexpr std::size_t kHdr = 12;  // u32 tag + u64 len
  if (buf.size() - pos < kHdr + 4) return false;
  std::uint32_t tag = 0;
  std::uint64_t len = 0;
  std::memcpy(&tag, buf.data() + pos, 4);
  std::memcpy(&len, buf.data() + pos + 4, 8);
  if (len > buf.size() - pos - kHdr - 4) return false;
  const std::size_t body_off = pos + kHdr;
  std::uint32_t want = 0;
  std::memcpy(&want, buf.data() + body_off + len, 4);
  std::uint32_t crc = util::crc32c(0, buf.data() + pos, kHdr);
  crc = util::crc32c(crc, buf.data() + body_off, static_cast<std::size_t>(len));
  if (crc != want) return false;
  out.tag = tag;
  out.body = buf.data() + body_off;
  out.len = static_cast<std::size_t>(len);
  pos = body_off + static_cast<std::size_t>(len) + 4;
  return true;
}

// --- File helpers (POSIX; definitions in record_io.cpp) -----------------------

// Reads the whole file. kUnavailable when it cannot be opened/read.
Status read_file(const std::string& path, std::vector<std::uint8_t>& out);

// Writes `bytes` to `path` all-or-nothing: <path>.tmp + fsync + rename +
// fsync of the containing directory. A crash anywhere leaves either the old
// file or the new one, never a mix.
Status write_file_atomic(const std::string& path,
                         const std::vector<std::uint8_t>& bytes);

// Truncates `path` to `size` bytes and fsyncs (torn-tail repair).
Status truncate_file(const std::string& path, std::uint64_t size);

// fsyncs the directory entry list (after create/rename/unlink inside it).
Status sync_dir(const std::string& dir);

bool file_exists(const std::string& path);

}  // namespace pimkd::durability
