# Empty compiler generated dependencies file for pimkd_parallel.
# This may be replaced when dependencies are built.
