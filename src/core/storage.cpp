#include "core/storage.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "pim/status.hpp"

namespace pimkd::core {

std::uint64_t DistStore::copy_words(const NodeRec& rec) const {
  (void)rec;
  return node_words(cfg_.dim);
}

void DistStore::add_copy(NodeId id, std::size_t module) {
  assert(sys_.metrics().in_round());
  // The registry records intent even for a dead module (recovery re-ships it);
  // the physical write and every charge are suppressed — the module is down
  // and the orchestrator knows it.
  registry_[id].push_back(static_cast<std::uint32_t>(module));
  if (!sys_.module_alive(module)) return;
  const NodeRec& rec = pool_.at(id);
  ModuleState& st = sys_.module(module);
  Copy& copy = st.nodes[id];
  ++copy.refs;
  copy.counter = rec.counter;
  std::uint64_t words = copy_words(rec);
  if (rec.is_leaf() && copy.refs == 1) {
    const std::vector<PointId>& pts = pool_.cold(id).leaf_pts;
    st.leaf_points[id] = pts;
    words += static_cast<std::uint64_t>(pts.size()) * point_words(cfg_.dim);
  }
  sys_.metrics().add_comm(module, words);
  sys_.metrics().add_storage(module, static_cast<std::int64_t>(words));
}

void DistStore::remove_all_copies(NodeId id) {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return;
  const NodeRec& rec = pool_.at(id);
  for (const std::uint32_t module : it->second) {
    if (!sys_.module_alive(module)) continue;  // already physically gone
    ModuleState& st = sys_.module(module);
    const auto cit = st.nodes.find(id);
    assert(cit != st.nodes.end() && cit->second.refs > 0);
    std::uint64_t words = copy_words(rec);
    if (--cit->second.refs == 0) {
      if (rec.is_leaf()) {
        const auto lit = st.leaf_points.find(id);
        if (lit != st.leaf_points.end()) {
          words += static_cast<std::uint64_t>(lit->second.size()) *
                   point_words(cfg_.dim);
          st.leaf_points.erase(lit);
        }
      }
      st.nodes.erase(cit);
    }
    sys_.metrics().add_storage(module, -static_cast<std::int64_t>(words));
  }
  registry_.erase(it);
}

void DistStore::remove_one_copy(NodeId id, std::size_t module) {
  const auto rit = registry_.find(id);
  if (rit == registry_.end()) {
    std::ostringstream os;
    os << "DistStore::remove_one_copy: node " << id << " has no copies";
    throw PimError(StatusCode::kCorruptState, os.str());
  }
  auto& mods = rit->second;
  const auto pos =
      std::find(mods.begin(), mods.end(), static_cast<std::uint32_t>(module));
  if (pos == mods.end()) {
    std::ostringstream os;
    os << "DistStore::remove_one_copy: node " << id << " absent on module "
       << module << " (" << mods.size() << " copies elsewhere)";
    throw PimError(StatusCode::kCorruptState, os.str());
  }
  mods.erase(pos);
  const bool live = sys_.module_alive(module);
  if (live) {
    const NodeRec& rec = pool_.at(id);
    ModuleState& st = sys_.module(module);
    const auto cit = st.nodes.find(id);
    assert(cit != st.nodes.end() && cit->second.refs > 0);
    std::uint64_t words = copy_words(rec);
    if (--cit->second.refs == 0) {
      if (rec.is_leaf()) {
        const auto lit = st.leaf_points.find(id);
        if (lit != st.leaf_points.end()) {
          words += static_cast<std::uint64_t>(lit->second.size()) *
                   point_words(cfg_.dim);
          st.leaf_points.erase(lit);
        }
      }
      st.nodes.erase(cit);
    }
    sys_.metrics().add_storage(module, -static_cast<std::int64_t>(words));
  }
  if (mods.empty()) registry_.erase(rit);
}

bool DistStore::module_has(std::size_t module, NodeId id) const {
  const ModuleState& st = sys_.module(module);
  return st.nodes.count(id) != 0;
}

bool DistStore::has_live_copy(NodeId id) const {
  for (const std::uint32_t m : copy_modules(id))
    if (sys_.module_alive(m)) return true;
  return false;
}

const std::vector<std::uint32_t>& DistStore::copy_modules(NodeId id) const {
  const auto it = registry_.find(id);
  return it == registry_.end() ? empty_ : it->second;
}

std::size_t DistStore::copy_count(NodeId id) const {
  return copy_modules(id).size();
}

void DistStore::write_counter_copies(NodeId id, bool charge_comm) {
  assert(sys_.metrics().in_round());
  const NodeRec& rec = pool_.at(id);
  pim::FaultInjector* faults = sys_.faults();
  for (const std::uint32_t module : copy_modules(id)) {
    if (!sys_.module_alive(module)) continue;  // send suppressed: module down
    if (charge_comm) sys_.metrics().add_comm(module, kCounterWords);
    // A lost message is charged (the word left the host) but never applied:
    // the replica keeps its stale counter until resync_counters repairs it.
    if (charge_comm && faults && faults->drop_counter_word(module)) continue;
    ModuleState& st = sys_.module(module);
    const auto it = st.nodes.find(id);
    assert(it != st.nodes.end());
    it->second.counter = rec.counter;
    sys_.metrics().add_module_work(module, 1);
  }
}

void DistStore::refresh_leaf_payload(NodeId leaf, std::uint64_t words_changed) {
  assert(sys_.metrics().in_round());
  assert(pool_.at(leaf).is_leaf());
  const auto& mods = copy_modules(leaf);
  // Deduplicate modules: the payload is stored once per module.
  std::vector<std::uint32_t> uniq(mods.begin(), mods.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const std::uint32_t module : uniq) {
    if (!sys_.module_alive(module)) continue;  // send suppressed: module down
    ModuleState& st = sys_.module(module);
    auto& stored = st.leaf_points[leaf];
    const auto old_words = static_cast<std::int64_t>(stored.size()) *
                           static_cast<std::int64_t>(point_words(cfg_.dim));
    stored = pool_.cold(leaf).leaf_pts;
    const auto new_words = static_cast<std::int64_t>(stored.size()) *
                           static_cast<std::int64_t>(point_words(cfg_.dim));
    sys_.metrics().add_comm(module, words_changed);
    sys_.metrics().add_module_work(module, 1 + words_changed);
    sys_.metrics().add_storage(module, new_words - old_words);
  }
}

DistStore::RecoverySummary DistStore::rebuild_module(std::size_t m) {
  assert(sys_.metrics().in_round());
  assert(sys_.module_alive(m));
  RecoverySummary sum;
  ModuleState& st = sys_.module(m);
  for (const auto& [id, mods] : registry_) {
    const auto refs_here = static_cast<std::uint32_t>(
        std::count(mods.begin(), mods.end(), static_cast<std::uint32_t>(m)));
    if (refs_here == 0) continue;
    const NodeRec& rec = pool_.at(id);
    // Prefer a surviving replica as the source (Figure-2 dual-way caching
    // collocates copies widely); the host point store is the fallback of last
    // resort and always suffices — it is authoritative.
    std::size_t src = m;
    for (const std::uint32_t other : mods) {
      if (other != m && sys_.module_alive(other) && module_has(other, id)) {
        src = other;
        break;
      }
    }
    Copy& copy = st.nodes[id];
    copy.refs = refs_here;
    copy.counter = rec.counter;
    std::uint64_t words =
        static_cast<std::uint64_t>(refs_here) * copy_words(rec);
    if (rec.is_leaf()) {
      const std::vector<PointId>& pts = pool_.cold(id).leaf_pts;
      st.leaf_points[id] = pts;
      words += static_cast<std::uint64_t>(pts.size()) * point_words(cfg_.dim);
    }
    if (src != m) {
      sys_.metrics().add_comm(src, words);  // read side of the transfer
      sum.from_replicas += refs_here;
    } else {
      sys_.metrics().add_cpu_work(words);  // host reconstructs the copy
      sum.from_host += refs_here;
    }
    sys_.metrics().add_comm(m, words);
    sys_.metrics().add_module_work(m, refs_here);
    sys_.metrics().add_storage(m, static_cast<std::int64_t>(words));
    sum.copies += refs_here;
    sum.words += words;
  }
  return sum;
}

std::uint64_t DistStore::resync_counters() {
  assert(sys_.metrics().in_round());
  std::uint64_t fixed = 0;
  for (const auto& [id, mods] : registry_) {
    const NodeRec& rec = pool_.at(id);
    // Dedup: one physical Copy per module regardless of ref multiplicity.
    std::vector<std::uint32_t> uniq(mods.begin(), mods.end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    for (const std::uint32_t module : uniq) {
      if (!sys_.module_alive(module)) continue;
      ModuleState& st = sys_.module(module);
      auto cit = st.nodes.find(id);
      if (cit == st.nodes.end() || cit->second.counter == rec.counter)
        continue;
      cit->second.counter = rec.counter;
      sys_.metrics().add_comm(module, kCounterWords);
      sys_.metrics().add_module_work(module, 1);
      ++fixed;
    }
  }
  return fixed;
}

std::uint64_t DistStore::node_storage_words(NodeId id) const {
  const auto it = registry_.find(id);
  if (it == registry_.end()) return 0;
  const NodeRec& rec = pool_.at(id);
  std::uint64_t words =
      static_cast<std::uint64_t>(it->second.size()) * node_words(cfg_.dim);
  if (rec.is_leaf()) {
    std::vector<std::uint32_t> uniq(it->second.begin(), it->second.end());
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    words += static_cast<std::uint64_t>(uniq.size()) *
             pool_.cold(id).leaf_pts.size() * point_words(cfg_.dim);
  }
  return words;
}

}  // namespace pimkd::core
