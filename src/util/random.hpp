// Deterministic, splittable pseudo-randomness.
//
// All randomized components of the library (hash placement, sampling,
// approximate counters, workload generators) draw from Rng so that every
// experiment is reproducible from a single seed. The generator is a small
// counter-based mix (splitmix64) — fast, stateless splitting, good enough
// statistical quality for placement and sampling.
#pragma once

#include <cstdint>
#include <vector>

namespace pimkd {

// splitmix64 step: the standard finalizer-based PRNG.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stateless hash of a 64-bit value (used for node -> module placement).
inline std::uint64_t hash64(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) : state_(seed) {}

  std::uint64_t next_u64() { return splitmix64(state_); }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiplicative range reduction (Lemire); bias is negligible for our use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bernoulli(double p) {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return next_double() < p;
  }

  // Standard normal via Box-Muller (one value per call; simple and adequate).
  double next_gaussian();

  // An independent child generator; splitting is deterministic in (seed, i).
  Rng split(std::uint64_t i) const {
    std::uint64_t s = state_ ^ (0xd1b54a32d192ed03ULL * (i + 1));
    return Rng(splitmix64(s));
  }

  // Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, std::uint32_t k);

  // Checkpoint hooks (src/durability/): the raw splitmix64 state. A restored
  // tree must reproduce the original's *future* draws (counter attempts,
  // rebuild splits) exactly, so the generator state is part of a snapshot.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t s) { state_ = s; }

 private:
  std::uint64_t state_;
};

}  // namespace pimkd
