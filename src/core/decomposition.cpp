#include "core/decomposition.hpp"

#include <cmath>

namespace pimkd::core {

std::vector<double> group_thresholds(std::size_t P) {
  std::vector<double> h;
  double v = static_cast<double>(P < 2 ? 2 : P);
  h.push_back(v);
  while (v > 1.0) {
    v = std::log2(v);
    if (v < 1.0) v = 1.0;
    h.push_back(v);
  }
  return h;
}

int group_of(double t, std::span<const double> thresholds) {
  if (t < 1.0) t = 1.0;
  // Group 0: t >= H_0 (= P).
  if (t >= thresholds[0]) return 0;
  for (std::size_t j = 1; j < thresholds.size(); ++j)
    if (t >= thresholds[j]) return static_cast<int>(j);
  return static_cast<int>(thresholds.size()) - 1;  // t in [1, H_last]
}

}  // namespace pimkd::core
