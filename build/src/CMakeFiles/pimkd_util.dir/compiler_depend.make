# Empty compiler generated dependencies file for pimkd_util.
# This may be replaced when dependencies are built.
