file(REMOVE_RECURSE
  "libpimkd_pim.a"
)
