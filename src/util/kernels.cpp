// Kernel dispatch and the scalar fallback lanes (DESIGN.md §11).
#include "util/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace pimkd::kernels {

namespace detail {
// Implemented in kernels_avx2.cpp (the only -mavx2 translation unit). When
// the toolchain cannot target AVX2 these are still defined, but
// compiled_with_avx2() reports false and resolve() never selects them.
bool compiled_with_avx2();
void leaf_sq_dists_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* q, int dim, double* out);
void leaf_contains_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* lo, const double* hi, int dim,
                        std::uint8_t* out);
}  // namespace detail

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
  }
  return "?";
}

Request parse_request(const std::string& s) {
  if (s.empty() || s == "auto") return Request::kAuto;
  if (s == "off") return Request::kOff;
  if (s == "avx2") return Request::kAvx2;
  throw std::invalid_argument("PIMKD_SIMD / PimKdConfig::simd must be one of "
                              "\"off\", \"avx2\", \"auto\" (got \"" + s +
                              "\")");
}

bool valid_request(const std::string& s) {
  return s.empty() || s == "auto" || s == "off" || s == "avx2";
}

bool cpu_supports_avx2() {
  if (!detail::compiled_with_avx2()) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {
const char* request_name(Request r) {
  switch (r) {
    case Request::kOff: return "off";
    case Request::kAvx2: return "avx2";
    case Request::kAuto: return "auto";
  }
  return "?";
}

// Log each distinct (request, outcome) pair once per process: tests build
// thousands of trees and must not flood stderr, but the dispatch decision
// has to be auditable.
void log_resolution(Request r, Isa isa) {
  static std::mutex mu;
  static bool seen[3][2] = {};
  std::lock_guard<std::mutex> lock(mu);
  bool& s = seen[static_cast<int>(r)][static_cast<int>(isa)];
  if (s) return;
  s = true;
  std::fprintf(stderr, "[pimkd] SIMD dispatch: %s (requested %s, cpu %s avx2)\n",
               isa_name(isa), request_name(r),
               cpu_supports_avx2() ? "supports" : "lacks");
}
}  // namespace

Isa resolve(Request r) {
  Isa isa = Isa::kScalar;
  if (r != Request::kOff && cpu_supports_avx2()) isa = Isa::kAvx2;
  log_resolution(r, isa);
  return isa;
}

namespace {
std::atomic<int> g_active{-1};  // -1 = unresolved

Isa resolve_from_env() {
  const char* env = std::getenv("PIMKD_SIMD");
  Request r = Request::kAuto;
  if (env != nullptr) {
    try {
      r = parse_request(env);
    } catch (const std::invalid_argument&) {
      std::fprintf(stderr,
                   "[pimkd] ignoring invalid PIMKD_SIMD=\"%s\" (want "
                   "off|avx2|auto); using auto\n",
                   env);
      r = Request::kAuto;
    }
  }
  return resolve(r);
}
}  // namespace

Isa active() {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    const Isa isa = resolve_from_env();
    int expected = -1;
    if (g_active.compare_exchange_strong(expected, static_cast<int>(isa),
                                         std::memory_order_acq_rel))
      return isa;
    v = g_active.load(std::memory_order_acquire);
  }
  return static_cast<Isa>(v);
}

void force_active(Isa isa) {
  g_active.store(static_cast<int>(isa), std::memory_order_release);
}

void leaf_sq_dists(Isa isa, const double* data, std::uint32_t stride,
                   std::uint32_t base, std::uint32_t count, const double* q,
                   int dim, double* out) {
  if (count == 0) return;
  if (isa == Isa::kAvx2) {
    detail::leaf_sq_dists_avx2(data, stride, base, count, q, dim, out);
    return;
  }
  // Scalar lanes: the single point-point definition over the strided rows.
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = sq_dist_stride(data + base + i, stride, q, dim);
}

void leaf_contains(Isa isa, const double* data, std::uint32_t stride,
                   std::uint32_t base, std::uint32_t count, const double* lo,
                   const double* hi, int dim, std::uint8_t* out) {
  if (count == 0) return;
  if (isa == Isa::kAvx2) {
    detail::leaf_contains_avx2(data, stride, base, count, lo, hi, dim, out);
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = box_contains_stride(data + base + i, stride, lo, hi, dim) ? 1 : 0;
}

}  // namespace pimkd::kernels
