// AVX2 kernel lanes — the only translation unit compiled with -mavx2 (see
// src/CMakeLists.txt), so the rest of the binary stays portable and these
// bodies are only ever entered after __builtin_cpu_supports("avx2").
//
// Determinism: one point per lane; the dimension loop is OUTSIDE the lane,
// so each lane performs exactly the scalar op sequence — diff = p[d] - q[d],
// acc += diff * diff in ascending d — with plain IEEE _mm256_mul_pd /
// _mm256_add_pd (never FMA; the file is additionally built with
// -ffp-contract=off so the compiler cannot contract). A lane's result is
// therefore bit-identical to kernels::sq_dist_stride on every input,
// including infinities from Box::whole/empty pruning boxes.
#include "util/kernels.hpp"

#if defined(PIMKD_KERNELS_AVX2)
#include <immintrin.h>
#endif

namespace pimkd::kernels::detail {

bool compiled_with_avx2() {
#if defined(PIMKD_KERNELS_AVX2)
  return true;
#else
  return false;
#endif
}

#if defined(PIMKD_KERNELS_AVX2)

void leaf_sq_dists_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* q, int dim, double* out) {
  for (std::uint32_t i = 0; i < count; i += kLaneWidth) {
    __m256d acc = _mm256_setzero_pd();
    for (int d = 0; d < dim; ++d) {
      const double* row = data + static_cast<std::size_t>(d) * stride + base + i;
      const __m256d p = _mm256_loadu_pd(row);
      const __m256d diff = _mm256_sub_pd(p, _mm256_set1_pd(q[d]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + i, acc);
  }
}

void leaf_contains_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* lo, const double* hi, int dim,
                        std::uint8_t* out) {
  for (std::uint32_t i = 0; i < count; i += kLaneWidth) {
    // All-true mask; each dimension ANDs in (p >= lo) && (p <= hi). Ordered
    // quiet compares match the scalar predicate for every non-NaN input.
    __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (int d = 0; d < dim; ++d) {
      const double* row = data + static_cast<std::size_t>(d) * stride + base + i;
      const __m256d p = _mm256_loadu_pd(row);
      const __m256d ge = _mm256_cmp_pd(p, _mm256_set1_pd(lo[d]), _CMP_GE_OQ);
      const __m256d le = _mm256_cmp_pd(p, _mm256_set1_pd(hi[d]), _CMP_LE_OQ);
      mask = _mm256_and_pd(mask, _mm256_and_pd(ge, le));
    }
    const int bits = _mm256_movemask_pd(mask);
    for (std::uint32_t j = 0; j < kLaneWidth; ++j)
      out[i + j] = static_cast<std::uint8_t>((bits >> j) & 1);
  }
}

#else  // !PIMKD_KERNELS_AVX2 — unreachable stubs (resolve() never picks kAvx2)

void leaf_sq_dists_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* q, int dim, double* out) {
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = sq_dist_stride(data + base + i, stride, q, dim);
}

void leaf_contains_avx2(const double* data, std::uint32_t stride,
                        std::uint32_t base, std::uint32_t count,
                        const double* lo, const double* hi, int dim,
                        std::uint8_t* out) {
  for (std::uint32_t i = 0; i < count; ++i)
    out[i] = box_contains_stride(data + base + i, stride, lo, hi, dim) ? 1 : 0;
}

#endif

}  // namespace pimkd::kernels::detail
