// Crash → degraded-mode queries → recover → integrity, plus trace
// determinism and a randomized crash-recover-verify soak (ISSUE 2 acceptance
// criteria). Throughout, a fault-free "reference" tree built with the same
// configuration and fed the same workload is the ground truth: faulty-run
// results must be byte-identical to it.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pim_kdtree.hpp"
#include "kdtree/bruteforce.hpp"
#include "util/generators.hpp"
#include "util/random.hpp"

namespace pimkd::core {
namespace {

PimKdConfig base_cfg(std::size_t P, std::uint64_t seed = 7) {
  PimKdConfig cfg;
  cfg.dim = 2;
  cfg.leaf_cap = 8;
  cfg.sigma = 32;
  cfg.system.num_modules = P;
  cfg.system.seed = seed;
  return cfg;
}

std::vector<Box> gen_boxes(int dim, std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> boxes;
  for (std::size_t t = 0; t < count; ++t) {
    Box b = Box::empty(dim);
    Point a, c;
    for (int d = 0; d < dim; ++d) {
      a[d] = rng.next_double() * 0.7;
      c[d] = a[d] + rng.next_double() * 0.3;
    }
    b.extend(a, dim);
    b.extend(c, dim);
    boxes.push_back(b);
  }
  return boxes;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FaultRecovery, DegradedQueriesMatchFaultFreeRun) {
  const auto pts = gen_uniform({.n = 3000, .dim = 2, .seed = 11});
  PimKdTree ref(base_cfg(8), pts);
  PimKdTree faulty(base_cfg(8), pts);

  faulty.crash_module(1);
  faulty.crash_module(4);
  faulty.crash_module(6);
  EXPECT_TRUE(faulty.degraded());
  EXPECT_FALSE(faulty.check_integrity().ok);  // damage is visible until repair

  const auto qs = gen_uniform_queries(pts, 2, 48, 5);
  EXPECT_EQ(faulty.knn(qs, 8), ref.knn(qs, 8));
  const auto boxes = gen_boxes(2, 16, 17);
  EXPECT_EQ(faulty.range(boxes), ref.range(boxes));
  EXPECT_EQ(faulty.radius(qs, 0.1), ref.radius(qs, 0.1));
  EXPECT_EQ(faulty.radius_count(qs, 0.1), ref.radius_count(qs, 0.1));

  // With 3 of 8 modules dead, some subtree visits must have degraded to the
  // host mirror.
  const auto st = faulty.degraded_stats();
  EXPECT_GT(st.host_fallback_subtrees + st.host_fallback_queries, 0u);
}

TEST(FaultRecovery, RecoverRestoresIntegrityAndReportsSources) {
  const auto pts = gen_uniform({.n = 2000, .dim = 2, .seed = 3});
  PimKdTree tree(base_cfg(8), pts);
  ASSERT_TRUE(tree.check_integrity().ok);

  const auto before = tree.metrics().snapshot();
  tree.crash_module(3);
  const auto rep = tree.recover(3);
  EXPECT_EQ(rep.module, 3u);
  EXPECT_TRUE(rep.integrity_ok);
  EXPECT_GT(rep.copies, 0u);
  EXPECT_GT(rep.words, 0u);
  EXPECT_EQ(rep.from_replicas + rep.from_host, rep.copies);
  // Group 0 is replicated on every module, so at least those copies must have
  // been sourced from surviving replicas rather than the host.
  EXPECT_GT(rep.from_replicas, 0u);
  EXPECT_FALSE(tree.degraded());
  EXPECT_TRUE(tree.check_integrity().ok);
  EXPECT_TRUE(tree.check_invariants());

  // Recovery cost is charged to the ledger: words shipped appear as
  // communication, and the repair ran inside at least one BSP round.
  const auto delta = tree.metrics().snapshot() - before;
  EXPECT_GE(delta.communication, rep.words);
  EXPECT_GT(delta.rounds, 0u);

  // Post-recovery queries are exact.
  const auto qs = gen_uniform_queries(pts, 2, 24, 9);
  const auto res = tree.knn(qs, 5);
  for (std::size_t i = 0; i < qs.size(); ++i)
    EXPECT_EQ(res[i], brute_knn(pts, 2, qs[i], 5));
}

TEST(FaultRecovery, RecoveringAnAliveModuleIsANoOp) {
  const auto pts = gen_uniform({.n = 500, .dim = 2, .seed = 21});
  PimKdTree tree(base_cfg(4), pts);
  const auto before = tree.metrics().snapshot();
  const auto rep = tree.recover(2);
  EXPECT_EQ(rep.copies, 0u);
  EXPECT_EQ(rep.words, 0u);
  EXPECT_TRUE(rep.integrity_ok);
  EXPECT_EQ((tree.metrics().snapshot() - before).communication, 0u);
}

TEST(FaultRecovery, RecoverRejectsOutOfRangeModule) {
  PimKdTree tree(base_cfg(4));
  EXPECT_THROW(tree.recover(4), std::invalid_argument);
  EXPECT_THROW(tree.recover(999), std::invalid_argument);
}

TEST(FaultRecovery, AllModulesDeadStillAnswersExactly) {
  // P=16 so the tree has non-Group-0 nodes (Group 0 holds subtrees of size
  // >= P): updates must actually route past dead masters, not just walk the
  // replicated top.
  const auto pts = gen_uniform({.n = 1500, .dim = 2, .seed = 31});
  PimKdTree ref(base_cfg(16), pts);
  PimKdTree tree(base_cfg(16), pts);
  for (std::size_t m = 0; m < tree.P(); ++m) tree.crash_module(m);
  EXPECT_EQ(tree.system().dead_module_count(), 16u);

  const auto qs = gen_uniform_queries(pts, 2, 16, 13);
  EXPECT_EQ(tree.knn(qs, 6), ref.knn(qs, 6));
  EXPECT_GT(tree.degraded_stats().host_fallback_queries, 0u);

  // Updates keep working too (routed on the CPU), and the evolution stays in
  // lockstep with the fault-free twin.
  const auto extra = gen_uniform({.n = 300, .dim = 2, .seed = 32});
  EXPECT_EQ(tree.insert(extra), ref.insert(extra));
  EXPECT_GT(tree.degraded_stats().cpu_routed_batches, 0u);
  EXPECT_EQ(tree.knn(qs, 6), ref.knn(qs, 6));

  const auto reps = tree.recover_all();
  EXPECT_EQ(reps.size(), 16u);
  // Intermediate reports still see the not-yet-recovered siblings as damage;
  // the final repair must leave the system green.
  EXPECT_TRUE(reps.back().integrity_ok);
  EXPECT_FALSE(tree.degraded());
  EXPECT_TRUE(tree.check_integrity().ok);
  EXPECT_EQ(tree.knn(qs, 6), ref.knn(qs, 6));
}

TEST(FaultRecovery, MessageLossGoesStaleAndResyncRepairs) {
  auto cfg = base_cfg(8);
  // From round 0 on, 80% of counter-sync words to m2 are dropped.
  cfg.system.fault_spec = "lose@0:m2:800";
  const auto pts = gen_uniform({.n = 2000, .dim = 2, .seed = 41});
  PimKdTree tree(cfg, pts);
  // Counter broadcasts during build + inserts must have hit the loss window.
  for (std::uint64_t b = 0; b < 4; ++b) {
    const auto extra = gen_uniform({.n = 200, .dim = 2, .seed = 50 + b});
    tree.insert(extra);
  }
  ASSERT_NE(tree.system().faults(), nullptr);
  EXPECT_GT(tree.system().faults()->dropped_words(), 0u);
  EXPECT_FALSE(tree.check_integrity().ok);  // stale replicas are visible

  // Loss never corrupts the canonical host mirror: queries stay exact.
  const auto qs = gen_uniform_queries(pts, 2, 12, 43);
  PimKdTree ref(base_cfg(8), pts);
  for (std::uint64_t b = 0; b < 4; ++b) {
    const auto extra = gen_uniform({.n = 200, .dim = 2, .seed = 50 + b});
    ref.insert(extra);
  }
  EXPECT_EQ(tree.knn(qs, 4), ref.knn(qs, 4));

  // Stop the loss, repair the stale counters, and the fsck goes green.
  tree.system().faults()->set_loss_permille(2, 0);
  EXPECT_GT(tree.resync_counters(), 0u);
  EXPECT_TRUE(tree.check_integrity().ok);
}

TEST(FaultRecovery, IdenticalSeedAndPlanGiveIdenticalTraces) {
  const auto run = [](const std::string& trace_path) {
    auto cfg = base_cfg(8, /*seed=*/77);
    cfg.trace_path = trace_path;
    cfg.system.fault_spec = "crash@3:m2;stall@5:m1:200";
    const auto pts = gen_uniform({.n = 1500, .dim = 2, .seed = 61});
    PimKdTree tree(cfg, pts);
    for (std::uint64_t b = 0; b < 6; ++b) {
      const auto extra = gen_uniform({.n = 100, .dim = 2, .seed = 70 + b});
      tree.insert(extra);
      const auto qs = gen_uniform_queries(pts, 2, 8, 80 + b);
      tree.knn(qs, 4);
    }
    tree.recover_all();
    EXPECT_TRUE(tree.check_integrity().ok);
  };
  const std::string a = ::testing::TempDir() + "pimkd_fault_trace_a.jsonl";
  const std::string b = ::testing::TempDir() + "pimkd_fault_trace_b.jsonl";
  run(a);
  run(b);
  const std::string ta = slurp(a);
  ASSERT_FALSE(ta.empty());
  EXPECT_EQ(ta, slurp(b));
  // The trace carries the injected fault and the recovery with its costs.
  EXPECT_NE(ta.find("\"type\":\"fault\""), std::string::npos);
  EXPECT_NE(ta.find("\"kind\":\"crash\""), std::string::npos);
  EXPECT_NE(ta.find("\"kind\":\"stall\""), std::string::npos);
  EXPECT_NE(ta.find("\"type\":\"recovery\""), std::string::npos);
  EXPECT_NE(ta.find("\"label\":\"recover\""), std::string::npos);
}

// The acceptance-criteria soak: interleave inserts, erases, random crashes
// and recoveries; at every step the faulty tree's answers must be
// byte-identical to the fault-free twin's, and every recovery must leave the
// fsck green.
TEST(FaultRecovery, RandomizedCrashRecoverVerifySoak) {
  const std::size_t P = 16;
  PimKdTree ref(base_cfg(P, /*seed=*/5));
  PimKdTree faulty(base_cfg(P, /*seed=*/5));

  const auto seed_pts = gen_uniform({.n = 2000, .dim = 2, .seed = 90});
  ASSERT_EQ(ref.insert(seed_pts), faulty.insert(seed_pts));

  Rng chaos(0x50AC);
  std::vector<PointId> live;
  for (PointId id = 0; id < seed_pts.size(); ++id) live.push_back(id);

  for (int it = 0; it < 8; ++it) {
    // Mutate: insert a fresh batch, erase a slice of the live ids.
    const auto batch =
        gen_uniform({.n = 150, .dim = 2, .seed = 200 + static_cast<unsigned>(it)});
    const auto ids_r = ref.insert(batch);
    const auto ids_f = faulty.insert(batch);
    ASSERT_EQ(ids_r, ids_f);
    for (const PointId id : ids_r) live.push_back(id);

    std::vector<PointId> victims;
    for (std::size_t j = it; j < live.size(); j += 7) victims.push_back(live[j]);
    ref.erase(victims);
    faulty.erase(victims);

    // Chaos: crash one or two modules picked by the seeded RNG.
    const std::size_t c1 = chaos.next_u64() % P;
    faulty.crash_module(c1);
    if (chaos.next_u64() % 2) faulty.crash_module(chaos.next_u64() % P);

    // Verify: every query family answers exactly as the fault-free twin.
    const auto qs = gen_uniform_queries(seed_pts, 2, 16,
                                        300 + static_cast<unsigned>(it));
    ASSERT_EQ(faulty.knn(qs, 6), ref.knn(qs, 6)) << "iteration " << it;
    const auto boxes = gen_boxes(2, 6, 400 + static_cast<unsigned>(it));
    ASSERT_EQ(faulty.range(boxes), ref.range(boxes)) << "iteration " << it;
    ASSERT_EQ(faulty.radius_count(qs, 0.08), ref.radius_count(qs, 0.08))
        << "iteration " << it;

    // Periodically repair; every report must come back integrity-green.
    if (it % 3 == 2) {
      const auto reps = faulty.recover_all();
      if (!reps.empty())
        ASSERT_TRUE(reps.back().integrity_ok) << "iteration " << it;
      ASSERT_FALSE(faulty.degraded());
      ASSERT_TRUE(faulty.check_integrity().ok) << "iteration " << it;
    }
  }

  const auto final_reps = faulty.recover_all();
  if (!final_reps.empty()) ASSERT_TRUE(final_reps.back().integrity_ok);
  EXPECT_TRUE(faulty.check_integrity().ok);
  EXPECT_TRUE(faulty.check_invariants());
  EXPECT_EQ(faulty.size(), ref.size());
  const auto qs = gen_uniform_queries(seed_pts, 2, 32, 999);
  EXPECT_EQ(faulty.knn(qs, 8), ref.knn(qs, 8));
}

}  // namespace
}  // namespace pimkd::core
