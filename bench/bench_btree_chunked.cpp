// E14 — §5 chunked trees and the §7 generalization, on the PIM B+-tree.
//
// A fanout-C B+-tree node is the "chunk" of §5: with batch size
// Ω(P log P · C log_C P) the push-pull threshold grows to C log_C P and the
// search communication becomes O(G + log^(G)_C P) against O(nG) space. The
// sweep over C shows the communication falling as the iterated-log base
// grows; the G sweep traces the generalized Theorem 5.1 frontier; and the
// comparison row shows the §7 claim — the same decomposition + caching
// machinery produces the same flat communication on a completely different
// tree type.
#include "bench_util.hpp"

#include "btree/pim_btree.hpp"

using namespace pimkd;
using namespace pimkd::bench;

namespace {
std::vector<std::pair<btree::Key, btree::Value>> random_kv(std::size_t n,
                                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<btree::Key, btree::Value>> kv(n);
  for (auto& [k, v] : kv) {
    k = rng.next_u64() >> 8;
    v = rng.next_u64();
  }
  return kv;
}
}  // namespace

int main() {
  banner("E14 bench_btree_chunked",
         "§5 chunked trees + §7 generalized design (PIM B+-tree)",
         "lookup comm/q falls with fanout C (log*_C P); G knob trades space "
         "for comm; same shape as the kd-tree on a different tree type");
  const std::size_t n = 1u << 16;
  const std::size_t P = 1024;
  const std::size_t S = 4096;
  const auto kv = random_kv(n, 3);
  std::vector<btree::Key> probes;
  Rng rng(4);
  for (std::size_t i = 0; i < S; ++i)
    probes.push_back(kv[rng.next_below(n)].first);

  BenchReport rep("bench_btree_chunked");
  {
    Json m;
    m.set("n", n).set("P", P).set("S", S);
    rep.meta(m);
  }
  Table t({"fanout C", "groups (log*_C P + 1)", "height", "lookup comm/q",
           "space / raw", "storage imbalance"});
  for (const std::size_t fanout : {4u, 8u, 16u, 64u, 256u}) {
    btree::BTreeConfig cfg;
    cfg.fanout = fanout;
    cfg.system.num_modules = P;
    cfg.system.seed = 5;
    btree::PimBTree tree(cfg, kv);
    const auto before = tree.metrics().snapshot();
    (void)tree.lookup(probes);
    const auto d = tree.metrics().snapshot() - before;
    t.row({num(double(fanout)), num(double(tree.thresholds().size())),
           num(double(tree.height())),
           num(double(d.communication) / double(S)),
           num(double(tree.storage_words()) / (2.0 * double(n))),
           num(tree.metrics().storage_balance().imbalance)});
    Json row;
    row.set("fanout", fanout).set("height", double(tree.height()))
        .set("lookup_comm_per_q", double(d.communication) / double(S))
        .set("space_ratio", double(tree.storage_words()) / (2.0 * double(n)));
    rep.add_row(row);
  }
  t.print();

  std::printf("\nG sweep (fanout 16, P=1024) — the generalized frontier:\n");
  Table t2({"G", "space / raw", "lookup comm/q"});
  for (const int G : {1, 2, -1}) {
    btree::BTreeConfig cfg;
    cfg.fanout = 16;
    cfg.cached_groups = G;
    cfg.system.num_modules = P;
    cfg.system.seed = 6;
    btree::PimBTree tree(cfg, kv);
    const auto before = tree.metrics().snapshot();
    (void)tree.lookup(probes);
    const auto d = tree.metrics().snapshot() - before;
    t2.row({G < 0 ? "all" : num(double(G)),
            num(double(tree.storage_words()) / (2.0 * double(n))),
            num(double(d.communication) / double(S))});
  }
  t2.print();

  std::printf("\nSkew (every lookup hits one key, fanout 16):\n");
  Table t3({"push-pull", "comm/q", "comm imbalance"});
  for (const bool pp : {true, false}) {
    btree::BTreeConfig cfg;
    cfg.fanout = 16;
    cfg.use_push_pull = pp;
    cfg.system.num_modules = 64;
    cfg.system.seed = 7;
    btree::PimBTree tree(cfg, kv);
    std::vector<btree::Key> adv(S, kv[42].first);
    tree.metrics().reset_module_loads();
    const auto before = tree.metrics().snapshot();
    (void)tree.lookup(adv);
    const auto d = tree.metrics().snapshot() - before;
    t3.row({pp ? "yes" : "no", num(double(d.communication) / double(S)),
            num(tree.metrics().comm_balance().imbalance)});
  }
  t3.print();

  std::printf("\nUpdate stream (12 x 1024 upserts then deletes, fanout 16, "
              "P=64):\n");
  Table t4({"op", "comm/op", "work/op"});
  {
    btree::BTreeConfig cfg;
    cfg.fanout = 16;
    cfg.system.num_modules = 64;
    cfg.system.seed = 8;
    btree::PimBTree tree(cfg, kv);
    const auto b1 = tree.metrics().snapshot();
    std::size_t ops = 0;
    for (int b = 0; b < 12; ++b) {
      const auto more = random_kv(1024, 80 + std::uint64_t(b));
      tree.upsert(more);
      ops += more.size();
    }
    const auto d1 = tree.metrics().snapshot() - b1;
    t4.row({"upsert", num(double(d1.communication) / double(ops)),
            num(double(d1.pim_work) / double(ops))});
    const auto b2 = tree.metrics().snapshot();
    std::vector<btree::Key> dead;
    for (std::size_t i = 0; i < 12288; ++i)
      dead.push_back(kv[rng.next_below(n)].first);
    tree.erase(dead);
    const auto d2 = tree.metrics().snapshot() - b2;
    t4.row({"erase", num(double(d2.communication) / double(dead.size())),
            num(double(d2.pim_work) / double(dead.size()))});
  }
  t4.print();
  return 0;
}
