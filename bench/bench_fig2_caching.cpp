// E8 — Figure 2 (replication strategies) + the adaptive replication leg.
//
// Part 1 builds the same tree under the four strategies (none / top-down /
// bottom-up / dual) and measures what each is good for:
//   * top-down caching makes root-to-leaf searches local inside a group,
//   * bottom-up chains make leaf-to-root walks (kNN backtracking) local,
//   * dual-way gets both, at roughly the summed space.
// The bottom-up walk is driven through the Cursor directly: anchor at a
// leaf's module, then visit successive ancestors.
//
// Part 2 sweeps read/write mixes: for each mix it replays one deterministic
// op stream under every static mode, then once more with the
// AdaptiveReplicationController starting from a deliberately wrong mode.
// The adaptive leg must land within 1.15x of the best static mode's total
// communication (including its own re-replication cost) — the "adaptive_pass"
// fields gate scripts/reproduce.sh. PIMKD_FIG2_SMOKE=1 shrinks everything
// for CI crash-coverage (the gate is only evaluated on full runs).
#include "bench_util.hpp"
#include "core/replication.hpp"

using namespace pimkd;
using namespace pimkd::bench;

namespace {

// Communication of walking from `leaf` to the root through the cursor.
std::uint64_t bottom_up_walk(core::PimKdTree& tree, core::NodeId leaf,
                             std::size_t start_module) {
  pim::RoundGuard round(tree.metrics());
  const auto before = tree.metrics().snapshot().communication;
  core::Cursor cur(tree.config(), tree.pool(), tree.store(), tree.metrics(),
                   start_module);
  core::NodeId cursor_node = leaf;
  cur.visit(cursor_node);
  while (tree.pool().at(cursor_node).parent != core::kNoNode) {
    cursor_node = tree.pool().at(cursor_node).parent;
    cur.visit(cursor_node);
  }
  return tree.metrics().snapshot().communication - before;
}

// One epoch-structured op stream: `reads` kNN requests (through the unified
// PimKdTree::query() facade) plus writes/2 inserts and writes/2 erases per
// epoch, the erases retiring the previous epoch's inserts so the tree size
// stays ~n0. Returns total communication. When `ctl` is set, the controller
// observes every epoch boundary and may switch the caching mode; its
// re-replication words land in the same ledger and are part of the total.
std::uint64_t run_stream(core::PimKdTree& tree,
                         core::AdaptiveReplicationController* ctl,
                         std::span<const Point> all, std::size_t n0,
                         std::size_t epochs, std::size_t reads,
                         std::size_t writes) {
  const auto before = tree.metrics().snapshot().communication;
  std::size_t next = n0;
  std::vector<PointId> prev;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<core::Request> reqs;
    reqs.reserve(reads);
    const std::size_t off = (e * 37) % 1000;
    for (std::size_t i = 0; i < reads; ++i)
      reqs.push_back(core::Request::knn(all[off + i], 4));
    (void)tree.query(reqs);
    const std::size_t w = writes / 2;
    if (w > 0) {
      auto ids = tree.insert(std::span<const Point>(all.data() + next, w));
      next += w;
      if (!prev.empty()) tree.erase(prev);
      prev = std::move(ids);
    }
    if (ctl) (void)ctl->on_epoch(reads, writes);
  }
  return tree.metrics().snapshot().communication - before;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("PIMKD_FIG2_SMOKE") != nullptr;
  banner("E8 bench_fig2_caching", "Figure 2 replication strategies",
         "top-down helps top-down search, bottom-up helps upward walks, "
         "dual helps both; space ~ sum");
  const std::size_t n = smoke ? 1u << 13 : 1u << 16;
  const std::size_t P = 64;
  const std::size_t S = smoke ? 256 : 2048;
  const auto pts = gen_uniform({.n = n, .dim = 2, .seed = 5});
  const auto qs = gen_uniform_queries(pts, 2, S, 6);

  BenchReport rep("bench_fig2_caching");
  {
    Json m;
    m.set("n", n).set("P", P).set("S", S);
    rep.meta(m);
  }
  struct ModeRow {
    const char* name;
    core::CachingMode mode;
  };
  const ModeRow modes[] = {
      {"(a) no intra-group caching", core::CachingMode::kNone},
      {"(c) top-down only", core::CachingMode::kTopDown},
      {"(d) bottom-up only", core::CachingMode::kBottomUp},
      {"(b) dual-way (PIM-kd-tree)", core::CachingMode::kDual},
  };

  Table t({"strategy", "storage words", "space vs none",
           "leafsearch comm/q", "bottom-up walk comm/q", "knn comm/q"});
  std::uint64_t none_words = 0;
  for (const auto& [name, mode] : modes) {
    auto cfg = default_cfg(P);
    cfg.caching = mode;
    core::PimKdTree tree(cfg, pts);
    if (mode == core::CachingMode::kNone) none_words = tree.storage_words();

    const auto b1 = tree.metrics().snapshot();
    const auto leaves = tree.leaf_search(qs);
    const auto d1 = tree.metrics().snapshot() - b1;

    std::uint64_t up_comm = 0;
    for (std::size_t i = 0; i < leaves.size(); ++i)
      up_comm += bottom_up_walk(tree, leaves[i], i % P);

    const auto b2 = tree.metrics().snapshot();
    (void)tree.knn(qs, 8);
    const auto d2 = tree.metrics().snapshot() - b2;

    t.row({name, num(double(tree.storage_words())),
           num(double(tree.storage_words()) / double(std::max<std::uint64_t>(
                                                  none_words, 1))),
           num(double(d1.communication) / double(S)),
           num(double(up_comm) / double(S)),
           num(double(d2.communication) / double(S))});
    Json row;
    row.set("strategy", name).set("storage_words", tree.storage_words())
        .set("leafsearch_comm_per_q", double(d1.communication) / double(S))
        .set("bottom_up_comm_per_q", double(up_comm) / double(S))
        .set("knn_comm_per_q", double(d2.communication) / double(S));
    rep.add_row(row);
  }
  t.print();
  std::printf(
      "\nReference scales: log2(n)=%.1f (hops without caching), "
      "log*P=%d (hops with caching)\n",
      std::log2(double(n)), log_star2(double(P)));

  // --- Part 2: adaptive replication across read/write mixes ------------------
  banner("E8b adaptive replication",
         "adaptive controller vs best static mode per mix",
         "adaptive total comm (incl. re-replication) within 1.15x of the "
         "best static mode, from a deliberately wrong starting mode");
  const std::size_t an = smoke ? 4000 : 20000;
  const std::size_t aP = 16;
  const std::size_t epochs = smoke ? 24 : 160;
  const double gate = 1.15;
  const auto apts =
      gen_uniform({.n = an + epochs * 200 + 1000, .dim = 2, .seed = 7});

  struct MixSpec {
    const char* name;
    std::size_t reads, writes;
    core::CachingMode adaptive_start;  // deliberately wrong for the mix
  };
  const MixSpec mixes[] = {
      {"read95", 380, 20, core::CachingMode::kNone},
      {"bal50", 200, 200, core::CachingMode::kDual},
      {"write10", 40, 360, core::CachingMode::kDual},
  };
  const core::CachingMode all_modes[] = {
      core::CachingMode::kNone, core::CachingMode::kTopDown,
      core::CachingMode::kBottomUp, core::CachingMode::kDual};

  Table at({"mix", "none", "topdown", "bottomup", "dual", "adaptive",
            "vs best", "switches", "final mode", "pass"});
  bool all_ok = true;
  for (const MixSpec& mix : mixes) {
    std::uint64_t comm[4] = {};
    for (const core::CachingMode mode : all_modes) {
      auto cfg = default_cfg(aP, 2, 42);
      cfg.caching = mode;
      core::PimKdTree tree(cfg, std::span<const Point>(apts.data(), an));
      comm[static_cast<int>(mode)] = run_stream(
          tree, nullptr, apts, an, epochs, mix.reads, mix.writes);
    }
    std::size_t best = 0;
    for (std::size_t m = 1; m < 4; ++m)
      if (comm[m] < comm[best]) best = m;

    auto cfg = default_cfg(aP, 2, 42);
    cfg.caching = mix.adaptive_start;
    core::PimKdTree tree(cfg, std::span<const Point>(apts.data(), an));
    core::AdaptiveReplicationController ctl(tree);
    const std::uint64_t adaptive = run_stream(
        tree, &ctl, apts, an, epochs, mix.reads, mix.writes);
    const double ratio =
        double(adaptive) / double(std::max<std::uint64_t>(comm[best], 1));
    const bool pass = smoke || ratio <= gate;  // gate evaluated on full runs
    all_ok = all_ok && pass;

    at.row({mix.name, num(double(comm[0])), num(double(comm[1])),
            num(double(comm[2])), num(double(comm[3])), num(double(adaptive)),
            num(ratio), num(double(ctl.switches())),
            core::caching_mode_name(ctl.mode()), pass ? "yes" : "NO"});
    Json row;
    row.set("mix", mix.name)
        .set("reads_per_epoch", std::uint64_t(mix.reads))
        .set("writes_per_epoch", std::uint64_t(mix.writes))
        .set("epochs", std::uint64_t(epochs))
        .set("comm_none", comm[0])
        .set("comm_topdown", comm[1])
        .set("comm_bottomup", comm[2])
        .set("comm_dual", comm[3])
        .set("best_static_mode", core::caching_mode_name(all_modes[best]))
        .set("best_static_comm", comm[best])
        .set("adaptive_start", core::caching_mode_name(mix.adaptive_start))
        .set("adaptive_comm", adaptive)
        .set("adaptive_ratio", ratio)
        .set("adaptive_switches", ctl.switches())
        .set("adaptive_final_mode", core::caching_mode_name(ctl.mode()))
        .set("adaptive_pass", pass);
    rep.add_row(row);
  }
  at.print();
  std::printf("\nadaptive gate (<= %.2fx best static): %s%s\n", gate,
              all_ok ? "PASS" : "FAIL",
              smoke ? " (smoke: gate not evaluated)" : "");
  return 0;
}
