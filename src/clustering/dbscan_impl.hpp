// Shared deterministic DBSCAN pipeline used by both the shared-memory
// baseline and the PIM-charged variant. The algorithm is written once; the
// execution-cost model is injected through CostHooks so the two entry points
// cannot diverge in their outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "clustering/connectivity.hpp"
#include "clustering/dbscan.hpp"

namespace pimkd::detail {

struct CostHooks {
  // A point lands in its (hashed) cell during grid computation.
  std::function<void(std::uint64_t cell_key, std::size_t pts)> on_cell;
  // Core marking / cell-graph check collocates two cells' points.
  std::function<void(std::uint64_t key_a, std::uint64_t key_b, std::size_t na,
                     std::size_t nb)>
      on_pair;
  // Per-cell local work (scans, USEC sort of m elements; Lemma 6.2).
  std::function<void(std::uint64_t cell_key, std::size_t work)> on_local;
  // Connected components implementation.
  std::function<Components(std::size_t, std::span<const Edge>)> cc;
};

DbscanResult dbscan_impl(std::span<const Point> pts, const DbscanParams& p,
                         const CostHooks& hooks);

}  // namespace pimkd::detail
