#include "clustering/union_find.hpp"

// Header-only; this TU anchors the header under the project warning set.
