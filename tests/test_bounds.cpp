// Table-1 conformance checker (pim/bounds.hpp).
#include "pim/bounds.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace pimkd::pim {
namespace {

BoundParams params() {
  BoundParams p;
  p.n = 1u << 16;
  p.batch = 1024;
  p.P = 64;
  p.M = 1u << 22;
  p.alpha = 1.0;
  return p;
}

Snapshot snap(std::uint64_t comm, std::uint64_t comm_time,
              std::uint64_t rounds) {
  Snapshot s;
  s.communication = comm;
  s.comm_time = comm_time;
  s.rounds = rounds;
  return s;
}

TEST(BoundCheck, ConstructionWithinAndBeyondBudget) {
  const BoundCheck check(2.0);
  auto p = params();
  p.batch = p.n;
  const double ls = log_star2(double(p.P));
  // Measured comm well inside 30 * n * log*P * slack.
  const auto ok = check.construction(
      snap(std::uint64_t(14.0 * double(p.n) * ls), 1000, 4), p);
  EXPECT_TRUE(ok.pass()) << ok.to_string();
  ASSERT_EQ(ok.results.size(), 3u);
  EXPECT_EQ(ok.results[0].dimension, "communication");
  EXPECT_EQ(ok.results[1].dimension, "comm_time");
  EXPECT_EQ(ok.results[2].dimension, "rounds");

  // 100x the bound must fail on communication.
  const auto bad = check.construction(
      snap(std::uint64_t(3000.0 * double(p.n) * ls), 1000, 4), p);
  EXPECT_FALSE(bad.pass());
  EXPECT_FALSE(bad.results[0].pass());
  EXPECT_NE(bad.to_string().find("FAIL"), std::string::npos);
}

TEST(BoundCheck, SlackScalesBudgets) {
  auto p = params();
  p.batch = p.n;
  const Snapshot s = snap(1u << 22, 100, 4);
  const auto tight = BoundCheck(0.001).construction(s, p);
  const auto loose = BoundCheck(100.0).construction(s, p);
  EXPECT_FALSE(tight.pass());
  EXPECT_TRUE(loose.pass());
  EXPECT_GT(loose.results[0].budget, tight.results[0].budget);
}

TEST(BoundCheck, UpdateScalesWithLogNAndAlpha) {
  const BoundCheck check(1.0);
  auto p = params();
  const auto r1 = check.update(snap(0, 0, 0), p);
  auto p2 = p;
  p2.n = p.n * p.n;  // log n doubles
  const auto r2 = check.update(snap(0, 0, 0), p2);
  EXPECT_NEAR(r2.results[0].budget, 2.0 * r1.results[0].budget,
              1e-6 * r1.results[0].budget);
  auto p3 = p;
  p3.alpha = 2.0;  // doubling alpha halves the amortized budget
  const auto r3 = check.update(snap(0, 0, 0), p3);
  EXPECT_NEAR(r3.results[0].budget, 0.5 * r1.results[0].budget,
              1e-6 * r1.results[0].budget);
}

TEST(BoundCheck, LeafSearchUsesMinOfLogStarAndLogRatio) {
  const BoundCheck check(1.0);
  // Tiny n relative to S: the log(n/S) side of the min kicks in and the
  // budget is smaller than the log*P side would give.
  auto small = params();
  small.n = 2048;
  small.batch = 1024;  // log2(n/S) = 1
  auto big = params();
  big.n = 1u << 20;
  big.batch = 1024;  // min picks log*P
  const auto r_small = check.leaf_search(snap(0, 0, 0), small);
  const auto r_big = check.leaf_search(snap(0, 0, 0), big);
  EXPECT_LT(r_small.results[0].budget, r_big.results[0].budget);
}

TEST(BoundCheck, KnnBudgetGrowsWithK) {
  const BoundCheck check(1.0);
  auto p = params();
  p.k = 1;
  const auto r1 = check.knn(snap(0, 0, 0), p);
  p.k = 64;
  const auto r64 = check.knn(snap(0, 0, 0), p);
  EXPECT_GT(r64.results[0].budget, 10.0 * r1.results[0].budget);
}

TEST(BoundCheck, RoundsBudgetScalesWithBatches) {
  const BoundCheck check(1.0);
  auto p = params();
  p.batches = 1;
  const auto r1 = check.update(snap(0, 0, 0), p);
  p.batches = 12;
  const auto r12 = check.update(snap(0, 0, 0), p);
  EXPECT_GT(r12.results[2].budget, r1.results[2].budget);
  // A diff spanning 12 batch ops with ~2 control rounds each passes with
  // batches=12 but fails with batches=1.
  const auto many_rounds = snap(100, 10, 24);
  EXPECT_FALSE(check.update(many_rounds, params()).results[2].pass());
  auto p12 = params();
  p12.batches = 12;
  EXPECT_TRUE(check.update(many_rounds, p12).results[2].pass());
}

TEST(BoundCheck, CustomOpCarriesCallerBudget) {
  const BoundCheck check(2.0);
  const auto p = params();
  const auto r =
      check.custom("dpc", snap(5000, 10, 2), p, 10000.0, "10 * n * rho");
  EXPECT_EQ(r.op, "dpc");
  EXPECT_TRUE(r.results[0].pass());  // 5000 <= 10000 * slack 2
  EXPECT_NE(r.results[0].expr.find("10 * n * rho"), std::string::npos);
  const auto fail =
      check.custom("dpc", snap(50000, 10, 2), p, 10000.0, "10 * n * rho");
  EXPECT_FALSE(fail.results[0].pass());
}

TEST(BoundCheck, CommTimeFloorCoversSmallBatches) {
  const BoundCheck check(1.0);
  // A single tiny query: one module carries the whole path. The additive
  // floor keeps the balance check from tripping on it.
  auto p = params();
  p.batch = 1;
  const auto r = check.leaf_search(snap(40, 40, 1), p);
  EXPECT_TRUE(r.results[1].pass()) << r.to_string();
}

}  // namespace
}  // namespace pimkd::pim
