#include "durability/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "core/pim_kdtree.hpp"
#include "durability/record_io.hpp"

namespace pimkd::durability {

namespace {

constexpr char kMagic[8] = {'P', 'K', 'D', 'C', 'K', 'P', 'T', '1'};
// v2: the storage record gained the migration remap section (placement
// overrides). v1 files are rejected rather than silently restored to hash
// placement.
constexpr std::uint32_t kVersion = 2;

// Record tags (fixed file order: meta, host, nodes, storage, end).
constexpr std::uint32_t kTagMeta = 1;
constexpr std::uint32_t kTagHost = 2;
constexpr std::uint32_t kTagNodes = 3;
constexpr std::uint32_t kTagStorage = 4;
constexpr std::uint32_t kTagEnd = 0xE0F;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

Status corrupt(const std::string& what) {
  return Status::Error(StatusCode::kCorruptState, "checkpoint: " + what);
}

}  // namespace

void Checkpoint::write_meta(const core::PimKdTree& t, std::uint64_t wal_seq,
                ByteWriter& w) {
  const core::PimKdConfig& c = t.cfg_;
  w.u32(kVersion);
  w.i32(c.dim);
  w.f64(c.alpha);
  w.f64(c.beta);
  w.u64(c.leaf_cap);
  w.u64(c.sigma);
  w.u8(c.use_approx_counters ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(c.caching));
  w.u8(c.replicate_group0 ? 1 : 0);
  w.i32(c.cached_groups);
  w.f64(c.push_pull_c);
  w.u8(c.use_push_pull ? 1 : 0);
  w.u8(c.delayed_construction ? 1 : 0);
  w.u64(c.delayed_finish_multiplier);
  // trace_path and fault_spec are intentionally not serialized: a restored
  // tree opens no trace and schedules no faults (both are per-run harness
  // settings, not tree state).
  w.u64(c.system.num_modules);
  w.u64(c.system.cache_words);
  w.u64(c.system.seed);
  w.u64(t.mutation_epoch_);
  w.u64(wal_seq);
}

void Checkpoint::write_host(const core::PimKdTree& t, ByteWriter& w) {
  const int dim = t.cfg_.dim;
  w.u64(t.rng_.state());
  w.u64(t.root_);
  w.u64(t.pool_.next_id());
  w.u64(t.live_);
  w.u64(t.peak_live_);
  w.u64(t.all_points_.size());
  for (const Point& p : t.all_points_)
    for (int d = 0; d < dim; ++d) w.f64(p[d]);
  for (const char a : t.alive_) w.u8(a ? 1 : 0);
  w.u8(t.priorities_.empty() ? 0 : 1);
  if (!t.priorities_.empty())
    for (const double p : t.priorities_) w.f64(p);
  w.u64(t.unfinished_.size());
  for (const core::NodeId id : t.unfinished_) w.u64(id);
}

void Checkpoint::write_nodes(const core::PimKdTree& t, ByteWriter& w) {
  const int dim = t.cfg_.dim;
  w.u64(t.pool_.size());
  t.pool_.for_each([&](const core::NodeRec& n) {  // ascending id: canonical
    w.u64(n.id);
    w.u64(n.parent);
    w.u64(n.left);
    w.u64(n.right);
    w.u64(n.comp_root);
    w.u64(n.exact_size);
    w.f64(n.counter);
    w.f64(n.split_val);
    w.i32(n.split_dim);
    w.u8(n.comp_finished ? 1 : 0);
    w.i32(n.group);
    w.u32(n.depth);
    for (int d = 0; d < dim; ++d) w.f64(n.box.lo[d]);
    for (int d = 0; d < dim; ++d) w.f64(n.box.hi[d]);
    const core::NodeCold& c = t.pool_.cold(n.id);
    w.u64(c.leaf_pts.size());
    for (const PointId p : c.leaf_pts) w.u32(p);
    w.f64(c.max_priority);
    w.u32(c.max_priority_id);
  });
}

void Checkpoint::write_storage(const core::PimKdTree& t, ByteWriter& w) {
  const std::size_t P = t.sys_.P();
  w.u64(P);
  for (std::size_t m = 0; m < P; ++m) w.u8(t.sys_.module_alive(m) ? 1 : 0);
  // Registry entries ascending by NodeId (the map is unordered); each
  // entry's module vector verbatim — its order drives counter-broadcast and
  // drop-draw sequences, so it is semantic state, not an implementation
  // detail.
  std::vector<core::NodeId> ids;
  ids.reserve(t.store_.registry_.size());
  for (const auto& [id, mods] : t.store_.registry_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (const core::NodeId id : ids) {
    const std::vector<std::uint32_t>& mods = t.store_.registry_.at(id);
    w.u64(id);
    w.u32(static_cast<std::uint32_t>(mods.size()));
    for (const std::uint32_t m : mods) w.u32(m);
  }
  // Replica counters that disagree with the canonical mirror value (message
  // loss leaves them stale until resync_counters); restored verbatim so a
  // checkpoint of a damaged tree reproduces the damage for fsck to see.
  ByteWriter stale;
  std::uint64_t n_stale = 0;
  for (const core::NodeId id : ids) {
    const core::NodeRec& rec = t.pool_.at(id);
    const std::vector<std::uint32_t>& mods = t.store_.registry_.at(id);
    std::vector<std::uint32_t> seen;
    for (const std::uint32_t m : mods) {
      if (std::find(seen.begin(), seen.end(), m) != seen.end()) continue;
      seen.push_back(m);
      if (!t.sys_.module_alive(m)) continue;
      const auto it = t.sys_.module(m).nodes.find(id);
      if (it == t.sys_.module(m).nodes.end()) continue;
      if (it->second.counter != rec.counter) {
        stale.u64(id);
        stale.u32(m);
        stale.f64(it->second.counter);
        ++n_stale;
      }
    }
  }
  w.u64(n_stale);
  w.raw(stale.bytes().data(), stale.size());
  // Migration placement overrides (v2): id -> pinned master module, ascending
  // by id. Without these a restored tree would re-derive hash placement and
  // disagree with the registry intent serialized above.
  std::vector<core::NodeId> remapped;
  remapped.reserve(t.store_.remap_.size());
  for (const auto& [id, mod] : t.store_.remap_) remapped.push_back(id);
  std::sort(remapped.begin(), remapped.end());
  w.u64(remapped.size());
  for (const core::NodeId id : remapped) {
    w.u64(id);
    w.u32(t.store_.remap_.at(id));
  }
}

Status Checkpoint::read_meta(ByteReader& r, core::PimKdConfig& cfg, Checkpoint::Info& info) {
  std::uint32_t version = 0;
  if (!r.u32(version)) return corrupt("meta record truncated");
  if (version != kVersion) return corrupt("unsupported format version");
  std::uint8_t approx = 0, caching = 0, g0 = 0, pp = 0, delayed = 0;
  bool ok = r.i32(cfg.dim) && r.f64(cfg.alpha) && r.f64(cfg.beta) &&
            r.u64(cfg.leaf_cap) && r.u64(cfg.sigma) && r.u8(approx) &&
            r.u8(caching) && r.u8(g0) && r.i32(cfg.cached_groups) &&
            r.f64(cfg.push_pull_c) && r.u8(pp) && r.u8(delayed) &&
            r.u64(cfg.delayed_finish_multiplier) &&
            r.u64(cfg.system.num_modules) && r.u64(cfg.system.cache_words) &&
            r.u64(cfg.system.seed) && r.u64(info.mutation_epoch) &&
            r.u64(info.wal_seq);
  if (!ok || r.remaining() != 0) return corrupt("meta record truncated");
  if (caching > static_cast<std::uint8_t>(core::CachingMode::kDual))
    return corrupt("meta: bad caching mode");
  cfg.use_approx_counters = approx != 0;
  cfg.caching = static_cast<core::CachingMode>(caching);
  cfg.replicate_group0 = g0 != 0;
  cfg.use_push_pull = pp != 0;
  cfg.delayed_construction = delayed != 0;
  cfg.trace_path.clear();
  cfg.system.fault_spec.clear();
  return Status::Ok();
}

Status Checkpoint::read_host(ByteReader& r, core::PimKdTree& t, std::uint64_t& next_node_id) {
  const int dim = t.cfg_.dim;
  std::uint64_t rng_state = 0, root = 0, live = 0, peak = 0, n_points = 0;
  if (!r.u64(rng_state) || !r.u64(root) || !r.u64(next_node_id) ||
      !r.u64(live) || !r.u64(peak) || !r.u64(n_points))
    return corrupt("host record truncated");
  t.rng_.set_state(rng_state);
  t.root_ = root;
  t.live_ = static_cast<std::size_t>(live);
  t.peak_live_ = static_cast<std::size_t>(peak);
  t.all_points_.resize(static_cast<std::size_t>(n_points));
  for (Point& p : t.all_points_) {
    p = Point{};
    for (int d = 0; d < dim; ++d)
      if (!r.f64(p[d]))
        return corrupt("host record truncated (points)");
  }
  t.alive_.resize(static_cast<std::size_t>(n_points));
  for (char& a : t.alive_) {
    std::uint8_t b = 0;
    if (!r.u8(b)) return corrupt("host record truncated (alive bitmap)");
    a = b ? 1 : 0;
  }
  std::uint8_t has_prior = 0;
  if (!r.u8(has_prior)) return corrupt("host record truncated");
  if (has_prior) {
    t.priorities_.resize(static_cast<std::size_t>(n_points));
    for (double& p : t.priorities_)
      if (!r.f64(p)) return corrupt("host record truncated (priorities)");
  }
  std::uint64_t n_unf = 0;
  if (!r.u64(n_unf)) return corrupt("host record truncated");
  t.unfinished_.resize(static_cast<std::size_t>(n_unf));
  for (core::NodeId& id : t.unfinished_)
    if (!r.u64(id)) return corrupt("host record truncated (unfinished)");
  if (r.remaining() != 0) return corrupt("host record has trailing bytes");
  return Status::Ok();
}

Status Checkpoint::read_nodes(ByteReader& r, core::PimKdTree& t,
                  std::uint64_t next_node_id) {
  const int dim = t.cfg_.dim;
  std::uint64_t count = 0;
  if (!r.u64(count)) return corrupt("nodes record truncated");
  core::NodeId prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    core::NodeId id = 0;
    if (!r.u64(id)) return corrupt("nodes record truncated");
    if (id <= prev) return corrupt("nodes record: ids not ascending");
    prev = id;
    core::NodeRec& n = t.pool_.restore_node(id);
    std::uint8_t finished = 0;
    std::int32_t split_dim = 0;
    bool ok = r.u64(n.parent) && r.u64(n.left) && r.u64(n.right) &&
              r.u64(n.comp_root) && r.u64(n.exact_size) && r.f64(n.counter) &&
              r.f64(n.split_val) && r.i32(split_dim) && r.u8(finished) &&
              r.i32(n.group) && r.u32(n.depth);
    if (!ok) return corrupt("nodes record truncated");
    n.split_dim = static_cast<std::int16_t>(split_dim);
    n.comp_finished = finished != 0;
    for (int d = 0; d < dim; ++d)
      if (!r.f64(n.box.lo[d]))
        return corrupt("nodes record truncated (box)");
    for (int d = 0; d < dim; ++d)
      if (!r.f64(n.box.hi[d]))
        return corrupt("nodes record truncated (box)");
    core::NodeCold& c = t.pool_.cold(id);
    std::uint64_t n_pts = 0;
    if (!r.u64(n_pts)) return corrupt("nodes record truncated");
    c.leaf_pts.resize(static_cast<std::size_t>(n_pts));
    for (PointId& p : c.leaf_pts)
      if (!r.u32(p)) return corrupt("nodes record truncated (leaf points)");
    if (!r.f64(c.max_priority) || !r.u32(c.max_priority_id))
      return corrupt("nodes record truncated");
    // The points record precedes nodes in the checkpoint layout, so
    // all_points_ is already rehydrated and the SoA mirror can be rebuilt.
    core::refresh_leaf_soa(c, t.all_points_, dim);
  }
  if (r.remaining() != 0) return corrupt("nodes record has trailing bytes");
  if (next_node_id <= prev) return corrupt("next node id <= last restored id");
  t.pool_.finish_restore(next_node_id);
  return Status::Ok();
}

Status Checkpoint::read_storage(ByteReader& r, core::PimKdTree& t) {
  std::uint64_t P = 0;
  if (!r.u64(P)) return corrupt("storage record truncated");
  if (P != t.sys_.P()) return corrupt("storage record: module count mismatch");
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(P));
  for (std::uint8_t& a : alive)
    if (!r.u8(a)) return corrupt("storage record truncated (alive bitmap)");
  // Kill dead modules first: crash_module zeroes their (still empty) storage
  // ledger, and the rehydration below then skips them — intent (registry) is
  // restored, physical state stays missing, exactly as before the save.
  for (std::size_t m = 0; m < P; ++m)
    if (!alive[m]) t.sys_.crash_module(m);

  const std::uint64_t nw = core::node_words(t.cfg_.dim);
  const std::uint64_t pw = core::point_words(t.cfg_.dim);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(P), 0);
  std::uint64_t n_entries = 0;
  if (!r.u64(n_entries)) return corrupt("storage record truncated");
  core::NodeId prev = 0;
  for (std::uint64_t i = 0; i < n_entries; ++i) {
    core::NodeId id = 0;
    std::uint32_t n_mods = 0;
    if (!r.u64(id) || !r.u32(n_mods))
      return corrupt("storage record truncated (registry)");
    if (id <= prev) return corrupt("storage record: registry ids not ascending");
    prev = id;
    if (!t.pool_.contains(id))
      return corrupt("storage record: registry entry for unknown node");
    std::vector<std::uint32_t>& mods = t.store_.registry_[id];
    mods.resize(n_mods);
    for (std::uint32_t& m : mods) {
      if (!r.u32(m)) return corrupt("storage record truncated (registry)");
      if (m >= P) return corrupt("storage record: module index out of range");
    }
    // Physical rehydration on alive modules, mirroring DistStore::add_copy's
    // accounting: one node record per ref, the leaf payload once per module.
    const core::NodeRec& rec = t.pool_.at(id);
    const core::NodeCold& cold = t.pool_.cold(id);
    for (const std::uint32_t m : mods) {
      if (!alive[m]) continue;
      core::ModuleState& st = t.sys_.module(m);
      core::Copy& copy = st.nodes[id];
      ++copy.refs;
      copy.counter = rec.counter;
      words[m] += nw;
      if (rec.is_leaf() && copy.refs == 1) {
        st.leaf_points[id] = cold.leaf_pts;
        words[m] += static_cast<std::uint64_t>(cold.leaf_pts.size()) * pw;
      }
    }
  }
  // Storage is charged (a restore re-materializes physically held words);
  // communication is not — rehydration is host-side, not a PIM transfer.
  for (std::size_t m = 0; m < P; ++m)
    if (words[m])
      t.sys_.metrics().add_storage(m, static_cast<std::int64_t>(words[m]));

  std::uint64_t n_stale = 0;
  if (!r.u64(n_stale)) return corrupt("storage record truncated");
  for (std::uint64_t i = 0; i < n_stale; ++i) {
    core::NodeId id = 0;
    std::uint32_t m = 0;
    double counter = 0;
    if (!r.u64(id) || !r.u32(m) || !r.f64(counter))
      return corrupt("storage record truncated (stale counters)");
    if (m >= P) return corrupt("storage record: stale-counter module range");
    if (!alive[m]) continue;
    const auto it = t.sys_.module(m).nodes.find(id);
    if (it == t.sys_.module(m).nodes.end())
      return corrupt("storage record: stale counter for absent copy");
    it->second.counter = counter;
  }

  std::uint64_t n_remap = 0;
  if (!r.u64(n_remap)) return corrupt("storage record truncated (remap)");
  core::NodeId prev_remap = 0;
  for (std::uint64_t i = 0; i < n_remap; ++i) {
    core::NodeId id = 0;
    std::uint32_t m = 0;
    if (!r.u64(id) || !r.u32(m))
      return corrupt("storage record truncated (remap)");
    if (i > 0 && id <= prev_remap)
      return corrupt("storage record: remap ids not ascending");
    prev_remap = id;
    if (!t.pool_.contains(id))
      return corrupt("storage record: remap entry for unknown node");
    if (m >= P) return corrupt("storage record: remap module out of range");
    t.store_.remap_[id] = m;
  }
  if (r.remaining() != 0) return corrupt("storage record has trailing bytes");
  return Status::Ok();
}

Status Checkpoint::serialize(const core::PimKdTree& tree, std::uint64_t wal_seq,
                             std::vector<std::uint8_t>& out, Info* info) {
  out.clear();
  // Reads keep running while we serialize; mutators wait at their write gate
  // until the pin drops. The pin also validates at the end that no mutation
  // slipped past the gate mid-serialization.
  const core::PimKdTree::ReadPin pin = tree.pin_reads();

  out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
  ByteWriter meta, host, nodes, storage;
  write_meta(tree, wal_seq, meta);
  write_host(tree, host);
  write_nodes(tree, nodes);
  write_storage(tree, storage);
  if (!pin.valid())
    return Status::Error(StatusCode::kUnavailable,
                         "checkpoint: a mutation raced the serialization");

  append_record(out, kTagMeta, meta.bytes());
  append_record(out, kTagHost, host.bytes());
  append_record(out, kTagNodes, nodes.bytes());
  append_record(out, kTagStorage, storage.bytes());
  append_record(out, kTagEnd, {});

  if (info) {
    info->mutation_epoch = tree.mutation_epoch();
    info->wal_seq = wal_seq;
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, host.bytes().data(), host.size());
    h = fnv1a(h, nodes.bytes().data(), nodes.size());
    h = fnv1a(h, storage.bytes().data(), storage.size());
    info->state_hash = h;
    info->bytes = out.size();
  }
  return Status::Ok();
}

Status Checkpoint::save(const core::PimKdTree& tree, const std::string& path,
                        std::uint64_t wal_seq, Info* info) {
  std::vector<std::uint8_t> bytes;
  if (Status s = serialize(tree, wal_seq, bytes, info); !s.ok()) return s;
  return write_file_atomic(path, bytes);
}

std::uint64_t Checkpoint::hash(const core::PimKdTree& tree) {
  std::vector<std::uint8_t> bytes;
  Info info;
  if (!serialize(tree, 0, bytes, &info).ok()) return 0;
  return info.state_hash;
}

Status Checkpoint::load(const std::string& path,
                        std::unique_ptr<core::PimKdTree>& out, Info* info) {
  out.reset();
  std::vector<std::uint8_t> buf;
  if (Status s = read_file(path, buf); !s.ok()) return s;
  if (buf.size() < sizeof kMagic ||
      std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0)
    return corrupt("bad magic");

  std::size_t pos = sizeof kMagic;
  const std::uint32_t order[] = {kTagMeta, kTagHost, kTagNodes, kTagStorage,
                                 kTagEnd};
  Record recs[5];
  for (std::size_t i = 0; i < 5; ++i) {
    if (!read_record(buf, pos, recs[i]))
      return corrupt("record framing or CRC failure");
    if (recs[i].tag != order[i]) return corrupt("records out of order");
  }

  Info local;
  core::PimKdConfig cfg;
  {
    ByteReader r(recs[0].body, recs[0].len);
    if (Status s = read_meta(r, cfg, local); !s.ok()) return s;
  }
  std::unique_ptr<core::PimKdTree> tree;
  try {
    tree = std::make_unique<core::PimKdTree>(cfg);
  } catch (const std::exception& ex) {
    return corrupt(std::string("config rejected: ") + ex.what());
  }
  std::uint64_t next_node_id = 0;
  {
    ByteReader r(recs[1].body, recs[1].len);
    if (Status s = read_host(r, *tree, next_node_id); !s.ok()) return s;
  }
  {
    ByteReader r(recs[2].body, recs[2].len);
    if (Status s = read_nodes(r, *tree, next_node_id); !s.ok()) return s;
  }
  {
    ByteReader r(recs[3].body, recs[3].len);
    if (Status s = read_storage(r, *tree); !s.ok()) return s;
  }
  if (tree->root_ != core::kNoNode && !tree->pool_.contains(tree->root_))
    return corrupt("root node missing from the pool");
  tree->mutation_epoch_ = local.mutation_epoch;

  if (info) {
    std::uint64_t h = kFnvOffset;
    h = fnv1a(h, recs[1].body, recs[1].len);
    h = fnv1a(h, recs[2].body, recs[2].len);
    h = fnv1a(h, recs[3].body, recs[3].len);
    local.state_hash = h;
    local.bytes = buf.size();
    *info = local;
  }
  out = std::move(tree);
  return Status::Ok();
}

}  // namespace pimkd::durability
