// Log-star tree decomposition (§3.1, Figure 1).
//
// With H_0 = P and H_j = log2(H_{j-1}), a node with subtree size T belongs to
// Group 0 if T >= P, and otherwise to the unique Group j >= 1 with
// H_j <= T < H_{j-1}. The decomposition depends only on subtree sizes (not
// heights), which is what makes it robust to the semi-balanced (alpha = O(1))
// shape of kd-trees.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pimkd::core {

// H_0 = P, H_1 = log2 P, ..., down to the first value <= 1 (set to 1).
// Result size = number of groups (Group 0 .. Group L where L = log* P).
std::vector<double> group_thresholds(std::size_t P);

// Group index of a node whose (approximate) subtree size is t, t >= 1.
int group_of(double t, std::span<const double> thresholds);

// Per-group structural statistics, used by the Figure 1 bench and the
// Lemma 3.1/3.2 property tests.
struct GroupStats {
  std::size_t nodes = 0;            // members of this group
  std::size_t components = 0;       // intra-group subtrees
  std::size_t max_component_size = 0;
  std::size_t max_component_height = 0;
};

}  // namespace pimkd::core
