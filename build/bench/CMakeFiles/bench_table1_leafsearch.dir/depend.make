# Empty dependencies file for bench_table1_leafsearch.
# This may be replaced when dependencies are built.
