#include <gtest/gtest.h>

#include "core/pim_kdtree.hpp"
#include "util/generators.hpp"
#include "util/stats.hpp"

namespace pimkd::core {
namespace {

PimKdConfig base_cfg(std::size_t P, int dim = 2, std::uint64_t seed = 1) {
  PimKdConfig cfg;
  cfg.dim = dim;
  cfg.leaf_cap = 8;
  cfg.sigma = 32;
  cfg.system.num_modules = P;
  cfg.system.cache_words = 1 << 20;
  cfg.system.seed = seed;
  return cfg;
}

struct Params {
  std::size_t n;
  std::size_t P;
  int dim;
};

class BuildP : public ::testing::TestWithParam<Params> {};

TEST_P(BuildP, InvariantsHoldAfterBuild) {
  const auto [n, P, dim] = GetParam();
  const auto pts = gen_uniform({.n = n, .dim = dim, .seed = n ^ P});
  PimKdTree tree(base_cfg(P, dim, 3), pts);
  EXPECT_EQ(tree.size(), n);
  ASSERT_TRUE(tree.check_invariants());
}

TEST_P(BuildP, HeightIsLogarithmic) {
  const auto [n, P, dim] = GetParam();
  const auto pts = gen_uniform({.n = n, .dim = dim, .seed = n + P});
  PimKdTree tree(base_cfg(P, dim, 4), pts);
  const double log_leaves =
      std::log2(std::max<double>(double(n) / 8.0, 2.0));
  EXPECT_LE(static_cast<double>(tree.height()), 2.5 * log_leaves + 4);
}

TEST_P(BuildP, SpaceIsNearLinear) {
  const auto [n, P, dim] = GetParam();
  const auto pts = gen_uniform({.n = n, .dim = dim, .seed = n + 2 * P});
  PimKdTree tree(base_cfg(P, dim, 5), pts);
  // Theorem 3.3: O(n log* P) words. The raw data alone needs n*(dim+1).
  const double raw = static_cast<double>(n) * double(point_words(dim));
  const double logstar = log_star2(static_cast<double>(P));
  EXPECT_LE(static_cast<double>(tree.storage_words()),
            16.0 * raw * (logstar + 1));
  EXPECT_GE(static_cast<double>(tree.storage_words()), raw);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuildP,
    ::testing::Values(Params{256, 4, 2}, Params{1024, 16, 2},
                      Params{4096, 64, 2}, Params{4096, 64, 3},
                      Params{16384, 64, 2}, Params{16384, 256, 3}));

TEST(Build, EmptyTree) {
  PimKdTree tree(base_cfg(8));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.check_invariants());
  Point q{};
  EXPECT_TRUE(tree.knn(std::span(&q, 1), 3)[0].empty());
}

TEST(Build, TinyInputs) {
  for (const std::size_t n : {1ul, 2ul, 7ul, 9ul, 33ul}) {
    const auto pts = gen_uniform({.n = n, .dim = 2, .seed = n});
    PimKdTree tree(base_cfg(8), pts);
    EXPECT_EQ(tree.size(), n);
    ASSERT_TRUE(tree.check_invariants()) << "n=" << n;
  }
}

TEST(Build, DuplicateHeavyInput) {
  std::vector<Point> pts(1000);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i][0] = static_cast<double>(i % 7);
    pts[i][1] = static_cast<double>(i % 4);
  }
  PimKdTree tree(base_cfg(16), pts);
  EXPECT_EQ(tree.size(), 1000u);
  ASSERT_TRUE(tree.check_invariants());
}

TEST(Build, AllIdenticalPoints) {
  std::vector<Point> pts(200);
  for (auto& p : pts) {
    p[0] = 3;
    p[1] = 3;
  }
  PimKdTree tree(base_cfg(16), pts);
  EXPECT_EQ(tree.size(), 200u);
  ASSERT_TRUE(tree.check_invariants());
}

TEST(Build, DegenerateLineInput) {
  const auto pts = gen_line({.n = 4096, .dim = 2, .seed = 8}, 1e-6);
  PimKdTree tree(base_cfg(64), pts);
  EXPECT_EQ(tree.size(), 4096u);
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_LE(tree.height(), 30u);
}

TEST(Build, GroupZeroReplicatedOnAllModules) {
  const auto pts = gen_uniform({.n = 8192, .dim = 2, .seed = 9});
  PimKdTree tree(base_cfg(32), pts);
  std::size_t group0 = 0;
  tree.pool().for_each([&](const NodeRec& rec) {
    if (rec.group == 0) {
      ++group0;
      EXPECT_EQ(tree.store().copy_count(rec.id), 32u);
    }
  });
  EXPECT_GT(group0, 0u);
}

TEST(Build, MasterPlacementSpreadsAcrossModules) {
  const auto pts = gen_uniform({.n = 16384, .dim = 2, .seed = 10});
  PimKdTree tree(base_cfg(16), pts);
  std::vector<std::size_t> masters(16, 0);
  tree.pool().for_each([&](const NodeRec& rec) {
    ++masters[tree.store().master_of(rec.id)];
  });
  const auto total = tree.num_nodes();
  for (const auto c : masters) {
    EXPECT_GT(c, total / 64);
    EXPECT_LT(c, total / 4);
  }
}

TEST(Build, StorageBalancedAcrossModules) {
  const auto pts = gen_uniform({.n = 32768, .dim = 2, .seed = 11});
  PimKdTree tree(base_cfg(32), pts);
  // Randomized placement keeps per-module storage within a small factor of
  // the mean (balls-into-bins, Lemma 2.3).
  EXPECT_LT(tree.metrics().storage_balance().imbalance, 2.0);
}

TEST(Build, ConstructionCommunicationIsNearLinear) {
  // Theorem 3.5: O(n log* P) construction communication.
  const std::size_t n = 32768;
  const auto pts = gen_uniform({.n = n, .dim = 2, .seed = 12});
  PimKdTree tree(base_cfg(64), pts);
  const auto s = tree.metrics().snapshot();
  const double logstar = log_star2(64.0);
  const double per_point =
      static_cast<double>(s.communication) / static_cast<double>(n);
  // Each point is dim+1 words; replicas multiply by ~log* P; allow overhead.
  EXPECT_LT(per_point, 20.0 * (logstar + 1));
  // And it should be far below an O(n log n) communication pattern.
  EXPECT_LT(per_point, std::log2(double(n)) * 10);
}

TEST(Build, DeterministicAcrossRuns) {
  const auto pts = gen_uniform({.n = 2048, .dim = 2, .seed = 13});
  PimKdTree a(base_cfg(16, 2, 99), pts);
  PimKdTree b(base_cfg(16, 2, 99), pts);
  EXPECT_EQ(a.metrics().snapshot().communication,
            b.metrics().snapshot().communication);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.height(), b.height());
}

TEST(Build, CachingModesChangeStorageMonotonically) {
  const auto pts = gen_uniform({.n = 16384, .dim = 2, .seed = 14});
  std::uint64_t words[4];
  const CachingMode modes[] = {CachingMode::kNone, CachingMode::kTopDown,
                               CachingMode::kBottomUp, CachingMode::kDual};
  for (int i = 0; i < 4; ++i) {
    auto cfg = base_cfg(64);
    cfg.caching = modes[i];
    PimKdTree tree(cfg, pts);
    words[i] = tree.storage_words();
  }
  EXPECT_LT(words[0], words[1]);
  EXPECT_LT(words[0], words[2]);
  EXPECT_LT(words[1], words[3]);
  EXPECT_LT(words[2], words[3]);
  // Both directions replicate the same node pairs, but top-down also copies
  // leaf payloads into ancestor modules, so it is at least as large.
  EXPECT_GE(words[1], words[2]);
}

TEST(Build, CachedGroupsKnobTradesSpace) {
  // §5: caching only the first G groups gives O(nG) space.
  const auto pts = gen_uniform({.n = 16384, .dim = 2, .seed = 15});
  std::uint64_t prev = 0;
  for (const int G : {1, 2, 3, -1}) {
    auto cfg = base_cfg(64);
    cfg.cached_groups = G;
    PimKdTree tree(cfg, pts);
    EXPECT_GE(tree.storage_words(), prev);
    prev = tree.storage_words();
    ASSERT_TRUE(tree.check_invariants()) << "G=" << G;
  }
}

}  // namespace
}  // namespace pimkd::core
