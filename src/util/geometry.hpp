// Geometry primitives for the PIM-kd-tree library.
//
// Points carry a runtime dimension D (1 <= D <= kMaxDim) stored inline so a
// point is trivially copyable and can be "shipped" to a PIM module by value.
// All distance computations are squared-Euclidean unless stated otherwise;
// callers take sqrt only at API boundaries that promise true distances.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <span>
#include <vector>

#include "util/kernels.hpp"

namespace pimkd {

inline constexpr int kMaxDim = 16;

using Coord = double;
using PointId = std::uint32_t;
inline constexpr PointId kInvalidPoint = std::numeric_limits<PointId>::max();

// A D-dimensional point. The dimension is a property of the dataset, not the
// point, so Point does not store it; containers carry the dimension.
struct Point {
  std::array<Coord, kMaxDim> x{};

  Coord& operator[](int d) { return x[static_cast<std::size_t>(d)]; }
  Coord operator[](int d) const { return x[static_cast<std::size_t>(d)]; }

  bool equals(const Point& o, int dim) const {
    for (int d = 0; d < dim; ++d)
      if (x[static_cast<std::size_t>(d)] != o.x[static_cast<std::size_t>(d)]) return false;
    return true;
  }
};

// Squared Euclidean distance restricted to the first `dim` coordinates.
// Delegates to the single point-point definition in util/kernels.hpp — the
// same code the vectorized leaf-scan kernels run per lane.
inline Coord sq_dist(const Point& a, const Point& b, int dim) {
  return kernels::sq_dist_coords(a.x.data(), b.x.data(), dim);
}

inline Coord euclid_dist(const Point& a, const Point& b, int dim) {
  return std::sqrt(sq_dist(a, b, dim));
}

// Axis-aligned bounding box over the first `dim` dimensions.
struct Box {
  Point lo;
  Point hi;

  static Box empty(int dim) {
    Box b;
    for (int d = 0; d < dim; ++d) {
      b.lo[d] = std::numeric_limits<Coord>::infinity();
      b.hi[d] = -std::numeric_limits<Coord>::infinity();
    }
    return b;
  }

  static Box whole(int dim) {
    Box b;
    for (int d = 0; d < dim; ++d) {
      b.lo[d] = -std::numeric_limits<Coord>::infinity();
      b.hi[d] = std::numeric_limits<Coord>::infinity();
    }
    return b;
  }

  void extend(const Point& p, int dim) {
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }

  void extend(const Box& o, int dim) {
    for (int d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }

  bool contains(const Point& p, int dim) const {
    return kernels::box_contains_stride(p.x.data(), 1, lo.x.data(),
                                        hi.x.data(), dim);
  }

  bool contains(const Box& o, int dim) const {
    for (int d = 0; d < dim; ++d)
      if (o.lo[d] < lo[d] || o.hi[d] > hi[d]) return false;
    return true;
  }

  bool intersects(const Box& o, int dim) const {
    for (int d = 0; d < dim; ++d)
      if (o.hi[d] < lo[d] || o.lo[d] > hi[d]) return false;
    return true;
  }

  // Squared distance from p to the closest point of the box (0 if inside).
  // Single branch-free definition in util/kernels.hpp; identical values to
  // the classic branchy clamp for every validated (non-NaN) input.
  Coord sq_dist_to(const Point& p, int dim) const {
    return kernels::box_sq_dist_coords(lo.x.data(), hi.x.data(), p.x.data(),
                                       dim);
  }

  // Does a ball (center c, squared radius r2) intersect this box?
  bool intersects_ball(const Point& c, Coord r2, int dim) const {
    return sq_dist_to(c, dim) <= r2;
  }

  // Dimension with the widest extent; ties broken by lowest index.
  int widest_dim(int dim) const {
    int best = 0;
    Coord w = hi[0] - lo[0];
    for (int d = 1; d < dim; ++d) {
      const Coord wd = hi[d] - lo[d];
      if (wd > w) { w = wd; best = d; }
    }
    return best;
  }

  Coord longest_side(int dim) const {
    Coord w = 0;
    for (int d = 0; d < dim; ++d) w = std::max(w, hi[d] - lo[d]);
    return w;
  }

  Coord diagonal(int dim) const {
    Coord s = 0;
    for (int d = 0; d < dim; ++d) {
      const Coord w = hi[d] - lo[d];
      s += w * w;
    }
    return std::sqrt(s);
  }
};

// Bounding box of a span of points.
Box bounding_box(std::span<const Point> pts, int dim);

// Input validation at API boundaries: every coordinate in the first `dim`
// dimensions must be finite (no NaN/Inf). Throws std::invalid_argument
// naming `op` and the offending position. A box may have infinite bounds
// (Box::whole) but no NaN, and must satisfy lo <= hi per dimension.
void validate_point(const Point& p, int dim, const char* op);
void validate_points(std::span<const Point> pts, int dim, const char* op);
void validate_box(const Box& b, int dim, const char* op);
// A search radius must be finite and non-negative.
void validate_radius(Coord r, const char* op);

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace pimkd
