// Cost explorer: how the PIM-kd-tree's configuration knobs move the
// communication / space / balance profile of a fixed workload.
//
// Sweeps the §5 trade-off (cached groups G), the Figure 2 caching modes, and
// P itself, then prints one profile line per configuration. A practical
// companion for choosing a deployment point on the Theorem 5.1 frontier.
//
//   $ ./cost_explorer
#include <cstdio>
#include <string>

#include "core/pim_kdtree.hpp"
#include "util/generators.hpp"
#include "util/stats.hpp"

using namespace pimkd;

namespace {

struct Profile {
  double space_ratio;
  double search_comm;
  double update_comm;
  double imbalance;
};

Profile profile(core::PimKdConfig cfg, std::span<const Point> pts) {
  core::PimKdTree tree(cfg, pts);
  const double raw =
      double(pts.size()) * double(core::point_words(cfg.dim));
  const auto qs = gen_uniform_queries(pts, cfg.dim, 2048, 5);
  tree.metrics().reset_module_loads();
  const auto b1 = tree.metrics().snapshot();
  (void)tree.leaf_search(qs);
  const auto d1 = tree.metrics().snapshot() - b1;
  const auto batch = gen_uniform({.n = 2048, .dim = cfg.dim, .seed = 6});
  const auto b2 = tree.metrics().snapshot();
  (void)tree.insert(batch);
  const auto d2 = tree.metrics().snapshot() - b2;
  return Profile{double(tree.storage_words()) / raw,
                 double(d1.communication) / 2048.0,
                 double(d2.communication) / 2048.0,
                 tree.metrics().comm_balance().imbalance};
}

void print(const std::string& name, const Profile& p) {
  std::printf("%-36s | %9.2f | %11.2f | %11.2f | %9.2f\n", name.c_str(),
              p.space_ratio, p.search_comm, p.update_comm, p.imbalance);
}

}  // namespace

int main() {
  const auto pts = gen_uniform({.n = 1 << 16, .dim = 2, .seed = 4});
  std::printf("workload: n=%zu uniform points, S=2048 searches + 2048 inserts\n\n",
              pts.size());
  std::printf("%-36s | %9s | %11s | %11s | %9s\n", "configuration",
              "space/raw", "search c/q", "insert c/op", "imbalance");
  std::printf("-------------------------------------+-----------+-------------+"
              "-------------+----------\n");

  auto base = [] {
    core::PimKdConfig cfg;
    cfg.dim = 2;
    cfg.system.num_modules = 64;
    cfg.system.seed = 1;
    return cfg;
  };

  print("default (dual, G=log*P, P=64)", profile(base(), pts));

  for (const int G : {1, 2}) {
    auto cfg = base();
    cfg.cached_groups = G;
    print("space-optimized G=" + std::to_string(G), profile(cfg, pts));
  }
  {
    auto cfg = base();
    cfg.caching = core::CachingMode::kTopDown;
    print("top-down caching only", profile(cfg, pts));
  }
  {
    auto cfg = base();
    cfg.caching = core::CachingMode::kNone;
    print("no intra-group caching", profile(cfg, pts));
  }
  {
    auto cfg = base();
    cfg.use_push_pull = false;
    print("push only (no pull)", profile(cfg, pts));
  }
  {
    auto cfg = base();
    cfg.use_approx_counters = false;
    print("exact counters (ablation)", profile(cfg, pts));
  }
  for (const std::size_t P : {16u, 256u}) {
    auto cfg = base();
    cfg.system.num_modules = P;
    print("P=" + std::to_string(P), profile(cfg, pts));
  }
  std::printf(
      "\nReading guide: search c/q tracks G + log^(G)P (Theorem 5.1);\n"
      "space/raw tracks log* P; exact counters inflate insert c/op because\n"
      "every insertion broadcasts counter updates to all copies.\n");
  return 0;
}
