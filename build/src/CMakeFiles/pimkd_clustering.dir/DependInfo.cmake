
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/connectivity.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/connectivity.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/connectivity.cpp.o.d"
  "/root/repo/src/clustering/dbscan.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/dbscan.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/dbscan.cpp.o.d"
  "/root/repo/src/clustering/dbscan_pim.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/dbscan_pim.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/dbscan_pim.cpp.o.d"
  "/root/repo/src/clustering/dpc.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/dpc.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/dpc.cpp.o.d"
  "/root/repo/src/clustering/dpc_pim.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/dpc_pim.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/dpc_pim.cpp.o.d"
  "/root/repo/src/clustering/priority_kdtree.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/priority_kdtree.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/priority_kdtree.cpp.o.d"
  "/root/repo/src/clustering/union_find.cpp" "src/CMakeFiles/pimkd_clustering.dir/clustering/union_find.cpp.o" "gcc" "src/CMakeFiles/pimkd_clustering.dir/clustering/union_find.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimkd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_kdtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
