file(REMOVE_RECURSE
  "CMakeFiles/pimkd_clustering.dir/clustering/connectivity.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/connectivity.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/dbscan.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/dbscan.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/dbscan_pim.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/dbscan_pim.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/dpc.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/dpc.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/dpc_pim.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/dpc_pim.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/priority_kdtree.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/priority_kdtree.cpp.o.d"
  "CMakeFiles/pimkd_clustering.dir/clustering/union_find.cpp.o"
  "CMakeFiles/pimkd_clustering.dir/clustering/union_find.cpp.o.d"
  "libpimkd_clustering.a"
  "libpimkd_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pimkd_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
