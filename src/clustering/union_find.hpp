// Union-find (disjoint sets) in two flavours:
//   * UnionFind — sequential, path halving + union by size,
//   * AtomicUnionFind — lock-free (CAS on parents), usable from parallel_for,
//     the building block of the linear-work parallel connectivity of [92].
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace pimkd {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Returns true if the sets were previously distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t count() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

// Wait-free find / lock-free unite on atomics. unite() uses the standard
// "hook the larger root under the smaller index" rule, which is linearizable
// without ABA issues because parents only ever decrease.
class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i)
      parent_[i].store(static_cast<std::uint64_t>(i),
                       std::memory_order_relaxed);
  }

  std::size_t find(std::size_t x) const {
    std::uint64_t p = parent_[x].load(std::memory_order_acquire);
    while (p != x) {
      x = static_cast<std::size_t>(p);
      p = parent_[x].load(std::memory_order_acquire);
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    for (;;) {
      a = find(a);
      b = find(b);
      if (a == b) return;
      if (a < b) std::swap(a, b);  // hook larger index under smaller
      std::uint64_t expect = static_cast<std::uint64_t>(a);
      if (parent_[a].compare_exchange_weak(expect,
                                           static_cast<std::uint64_t>(b),
                                           std::memory_order_acq_rel))
        return;
    }
  }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::atomic<std::uint64_t>> parent_;
};

}  // namespace pimkd
