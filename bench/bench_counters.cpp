// E10 — §3.3 approximate probabilistic counters (Lemma 3.6).
//
// Measures, for the paper's counter vs Morris vs Steele vs exact:
//   * update frequency (every update means a copy broadcast — communication),
//   * relative drift over a Delta_V = 2*beta*V window (accuracy).
// Shape: the paper's variant pays slightly more updates than Steele but keeps
// o(Delta_V) drift (whp in n), which is what alpha-balance detection needs;
// Morris is far too coarse; exact counters update every single time.
#include "bench_util.hpp"

#include "core/approx_counter.hpp"

using namespace pimkd;
using namespace pimkd::bench;
using namespace pimkd::core;

int main() {
  banner("E10 bench_counters", "§3.3 Lemma 3.6 counter accuracy/frequency",
         "paper counter: rare updates AND small drift; Steele: rarer but "
         "larger drift; Morris: order-of-magnitude only; exact: 100% updates");
  const double n = 1 << 20;
  const double beta = 0.5;
  BenchReport rep("bench_counters");
  {
    Json m;
    m.set("n", n).set("beta", beta);
    rep.meta(m);
  }
  Table t({"V (counter value)", "design", "updates per 10k incs",
           "mean |drift| / window"});
  for (const double v0 : {1e3, 1e4, 1e5}) {
    const int window = static_cast<int>(2 * beta * v0);
    const int trials = 16;

    double paper_updates = 0;
    double paper_drift = 0;
    double steele_updates = 0;
    double steele_drift = 0;
    double morris_drift = 0;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(1000 + static_cast<std::uint64_t>(trial));
      double v = v0;
      int ups = 0;
      for (int i = 0; i < window; ++i) {
        const auto step = counter_increment(v, beta, n, rng);
        if (step.updated) {
          v += step.delta;
          ++ups;
        }
      }
      paper_updates += double(ups) / double(window) * 10000.0;
      paper_drift += std::abs((v - v0) - window) / double(window);

      SteeleCounter steele;
      while (steele.estimate() < v0) (void)steele.increment(rng);
      const double s0 = steele.estimate();
      ups = 0;
      for (int i = 0; i < window; ++i) ups += steele.increment(rng);
      steele_updates += double(ups) / double(window) * 10000.0;
      steele_drift += std::abs((steele.estimate() - s0) - window) /
                      double(window);

      MorrisCounter morris;
      for (int i = 0; i < static_cast<int>(v0); ++i) (void)morris.increment(rng);
      morris_drift += std::abs(morris.estimate() - v0) / v0;
    }
    t.row({num(v0), "paper (log n / beta*V)", num(paper_updates / trials),
           num(paper_drift / trials)});
    t.row({num(v0), "Steele-Tristan", num(steele_updates / trials),
           num(steele_drift / trials)});
    t.row({num(v0), "Morris (rel err of value)", "~10000/V",
           num(morris_drift / trials)});
    t.row({num(v0), "exact", "10000", "0"});
    Json row;
    row.set("V", v0)
        .set("paper_updates_per_10k", paper_updates / trials)
        .set("paper_drift", paper_drift / trials)
        .set("steele_updates_per_10k", steele_updates / trials)
        .set("steele_drift", steele_drift / trials)
        .set("morris_rel_err", morris_drift / trials);
    rep.add_row(row);
  }
  t.print();

  std::printf(
      "\nEffect on the tree (Lemma 3.7): height with approximate vs exact "
      "counters after heavy updates:\n");
  Table t2({"counters", "height", "log2(n/leaf)"});
  for (const bool approx : {true, false}) {
    auto cfg = default_cfg(64);
    cfg.use_approx_counters = approx;
    core::PimKdTree tree(cfg);
    for (int b = 0; b < 16; ++b) {
      const auto pts = gen_uniform(
          {.n = 2048, .dim = 2, .seed = 2000 + static_cast<std::uint64_t>(b)});
      (void)tree.insert(pts);
    }
    t2.row({approx ? "approximate (beta=0.5)" : "exact",
            num(double(tree.height())),
            num(std::log2(double(tree.size()) / 8.0))});
  }
  t2.print();
  return 0;
}
