// E14 — online serving layer: latency / throughput under YCSB-style mixes.
//
// Drives the serve::BatchScheduler in front of a PimKdTree with generated
// request streams (read-heavy / update-heavy / scan-heavy, uniform and
// Zipfian key choice) across the batching policies, and reports wall-clock
// p50/p95/p99/p999 request latency plus throughput from the scheduler's
// util::LatencyHistogram. One leg runs multi-threaded producers against the
// background scheduler thread to exercise the MPSC path.
//
// PIMKD_SERVE_SMOKE=1 shrinks the stream for CI smoke runs (~2s).
// PIMKD_ROUTER_SMOKE=1 additionally restricts the run to the sharded
// (router) legs only — the CI router smoke target.
// PIMKD_MIGRATION_SMOKE=1 restricts the run to the migration-gate legs
// (zipf stream with/without the migration planner) at smoke sizing.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "router/frontend.hpp"

#include "bench_util.hpp"
#include "durability/manager.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"

using namespace pimkd;
using namespace pimkd::bench;
using namespace pimkd::serve;

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Leg {
  MixKind mix;
  double theta;  // 0 = uniform keys
  Policy policy;
};

}  // namespace

int main() {
  banner("E14 bench_serve",
         "online serving: adaptive batching over the batch-dynamic tree",
         "read-heavy mixes batch near the tradeoff target; p99 stays within "
         "the per-mix SLO; throughput tracks batch size");

  const auto env_on = [](const char* name) {
    const char* e = std::getenv(name);
    return e && *e && *e != '0';
  };
  // Router-only / migration-only smoke implies smoke sizing.
  const bool router_only = env_on("PIMKD_ROUTER_SMOKE");
  const bool migration_only = env_on("PIMKD_MIGRATION_SMOKE");
  const bool smoke =
      env_on("PIMKD_SERVE_SMOKE") || router_only || migration_only;
  const std::size_t n = smoke ? 4096 : 32768;
  const std::size_t requests = smoke ? 4000 : 30000;
  const std::size_t P = 64;
  const double slo_p99_us = 50'000.0;  // generous: regression tripwire only

  BenchReport rep("bench_serve");
  {
    Json m;
    m.set("n", static_cast<std::uint64_t>(n))
        .set("requests", static_cast<std::uint64_t>(requests))
        .set("P", static_cast<std::uint64_t>(P))
        .set("smoke", smoke);
    rep.meta(m);
  }

  Table t({"mix", "policy", "zipf", "reqs", "batches", "mean batch", "epochs",
           "kreq/s", "p50 us", "p95 us", "p99 us", "p999 us"});

  const Leg legs[] = {
      {MixKind::kReadHeavy, 0.0, Policy::kTradeoff},
      {MixKind::kReadHeavy, 0.99, Policy::kTradeoff},
      {MixKind::kUpdateHeavy, 0.0, Policy::kFixedSize},
      {MixKind::kScanHeavy, 0.0, Policy::kDeadline},
  };

  for (const Leg& leg : legs) {
    if (router_only || migration_only) break;
    WorkloadSpec spec = mix_spec(leg.mix);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 7;
    spec.zipf_theta = leg.theta;
    const ServeWorkload w = gen_serve_workload(spec);

    auto cfg = default_cfg(P);
    core::PimKdTree tree(cfg, w.initial);

    SchedulerConfig sc;
    sc.policy = leg.policy;
    sc.batch_size = 256;
    sc.max_batch = 4096;
    sc.deadline_ticks = 200'000;  // 200us oldest-waiter bound (ns ticks)
    sc.clock = now_ns;
    BatchScheduler sched(tree, sc);

    const auto before = tree.metrics().snapshot();
    const std::uint64_t t0 = now_ns();
    for (const WorkloadOp& op : w.ops) {
      (void)sched.submit(to_request(op), now_ns());
      sched.pump(now_ns());
    }
    sched.flush(now_ns());
    const double secs = double(now_ns() - t0) * 1e-9;
    const auto d = tree.metrics().snapshot() - before;

    const ServeStats st = sched.stats();
    const auto& h = st.service_latency;
    const double mean_batch =
        st.batches ? double(st.completed) / double(st.batches) : 0.0;
    const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
    const double p50 = double(h.percentile(50)) / 1000.0;
    const double p95 = double(h.percentile(95)) / 1000.0;
    const double p99 = double(h.percentile(99)) / 1000.0;
    const double p999 = double(h.percentile(99.9)) / 1000.0;

    t.row({mix_name(leg.mix), policy_name(leg.policy), num(leg.theta),
           num(double(st.completed)), num(double(st.batches)), num(mean_batch),
           num(double(st.epochs)), num(rps / 1000.0), num(p50), num(p95),
           num(p99), num(p999)});

    Json row;
    row.set("mix", mix_name(leg.mix))
        .set("policy", policy_name(leg.policy))
        .set("zipf_theta", leg.theta)
        .set("requests", st.completed)
        .set("batches", st.batches)
        .set("mean_batch", mean_batch)
        .set("epochs", st.epochs)
        .set("target_batch", static_cast<std::uint64_t>(sched.target_batch_size()))
        .set("throughput_rps", rps)
        .set("p50_us", p50)
        .set("p95_us", p95)
        .set("p99_us", p99)
        .set("p999_us", p999)
        .set("max_us", double(h.max()) / 1000.0)
        .set("comm_per_op",
             st.completed ? double(d.communication) / double(st.completed) : 0.0)
        .set("slo_p99_us", slo_p99_us)
        .set("slo_ok", p99 <= slo_p99_us);
    rep.add_row(row);
  }

  // Serial vs pipelined epoch execution on the read-heavy Zipfian stream
  // (the §8.5 acceptance leg): sustained throughput and p99 under both
  // engines, then a regression gate on their ratio. On few-core hosts the
  // stages time-share the cores with the producer, so wall-clock overlap is
  // limited — the gate is a tripwire against the pipelined engine
  // *regressing* sustained throughput, not a speedup claim (EXPERIMENTS.md
  // records the honest caveat; on parallel hardware the overlap is the win).
  double pipe_speedup = 0.0;
  if (!router_only && !migration_only) {
    WorkloadSpec spec = mix_spec(MixKind::kReadHeavy);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 7;
    spec.zipf_theta = 0.99;
    const ServeWorkload w = gen_serve_workload(spec);

    double rps_eng[2] = {0.0, 0.0};
    for (int eng = 0; eng < 2; ++eng) {
      auto cfg = default_cfg(P);
      core::PimKdTree tree(cfg, w.initial);
      SchedulerConfig sc;
      sc.policy = Policy::kTradeoff;
      sc.batch_size = 256;
      sc.max_batch = 4096;
      sc.deadline_ticks = 200'000;
      sc.clock = now_ns;
      sc.pipeline = eng == 1;
      sc.pipeline_depth = 4;
      BatchScheduler sched(tree, sc);

      const std::uint64_t t0 = now_ns();
      for (const WorkloadOp& op : w.ops) {
        (void)sched.submit(to_request(op), now_ns());
        sched.pump(now_ns());
      }
      sched.flush(now_ns());  // pipelined: drains — all requests resolved
      const double secs = double(now_ns() - t0) * 1e-9;

      const ServeStats st = sched.stats();
      const auto& h = st.service_latency;
      const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
      rps_eng[eng] = rps;
      const char* name = eng ? "read_heavy_pipelined" : "read_heavy_serial";
      t.row({name, policy_name(sc.policy), num(spec.zipf_theta),
             num(double(st.completed)), num(double(st.batches)),
             num(st.batches ? double(st.completed) / double(st.batches) : 0.0),
             num(double(st.epochs)), num(rps / 1000.0),
             num(double(h.percentile(50)) / 1000.0),
             num(double(h.percentile(95)) / 1000.0),
             num(double(h.percentile(99)) / 1000.0),
             num(double(h.percentile(99.9)) / 1000.0)});
      Json row;
      row.set("mix", name)
          .set("engine", eng ? "pipelined" : "serial")
          .set("policy", policy_name(sc.policy))
          .set("zipf_theta", spec.zipf_theta)
          .set("requests", st.completed)
          .set("batches", st.batches)
          .set("epochs", st.epochs)
          .set("throughput_rps", rps)
          .set("p50_us", double(h.percentile(50)) / 1000.0)
          .set("p95_us", double(h.percentile(95)) / 1000.0)
          .set("p99_us", double(h.percentile(99)) / 1000.0)
          .set("p999_us", double(h.percentile(99.9)) / 1000.0)
          .set("pipeline_stalls", st.pipeline_stalls)
          .set("read_straddles", st.read_straddles)
          .set("slo_p99_us", slo_p99_us)
          .set("slo_ok", double(h.percentile(99)) / 1000.0 <= slo_p99_us);
      rep.add_row(row);
      if (st.completed + st.rejected != st.submitted) {
        std::printf("LOST REQUESTS (%s)\n", name);
        return 1;
      }
    }

    pipe_speedup = rps_eng[0] > 0 ? rps_eng[1] / rps_eng[0] : 0.0;
    // Floor calibrated on the 1-core CI container: the pipelined engine pays
    // two extra thread handoffs per epoch with no spare core to absorb them;
    // anything below 0.6x sustained throughput is a real regression, not
    // scheduling noise (observed ~0.78-0.96x there, >1x on multi-core).
    const double gate_floor = 0.6;
    Json g;
    g.set("mix", "pipeline_gate")
        .set("pipeline_speedup", pipe_speedup)
        .set("gate_floor", gate_floor)
        .set("pipeline_gate_ok", pipe_speedup >= gate_floor);
    rep.add_row(g);
    t.row({"pipeline_gate", num(pipe_speedup) + "x", "", "", "", "", "", "", "",
           "", "", pipe_speedup >= gate_floor ? "ok" : "FAIL"});
  }

  // Durability cost (DESIGN.md §10): the same update-heavy stream served
  // with no WAL, with the WAL at kNone (append, no explicit sync), and at
  // kEveryBatch (fdatasync before every ack — the acked => durable
  // guarantee). The WAL-off row is the regression gate leg; the ratio rows
  // quantify what crash consistency costs on this host (EXPERIMENTS.md).
  if (!router_only && !migration_only) {
    WorkloadSpec spec = mix_spec(MixKind::kUpdateHeavy);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 13;
    const ServeWorkload w = gen_serve_workload(spec);

    struct WalLeg {
      const char* name;
      bool wal;
      durability::SyncPolicy sync;
    };
    const WalLeg wal_legs[] = {
        {"update_heavy_wal_off", false, durability::SyncPolicy::kNone},
        {"update_heavy_wal_nosync", true, durability::SyncPolicy::kNone},
        {"update_heavy_wal_epoch", true, durability::SyncPolicy::kEveryEpoch},
        {"update_heavy_wal_sync", true, durability::SyncPolicy::kEveryBatch},
    };
    double rps_off = 0.0;
    for (const WalLeg& leg : wal_legs) {
      auto cfg = default_cfg(P);
      core::PimKdTree tree(cfg, w.initial);

      const std::string dir =
          "/tmp/pimkd_bench_wal_" + std::to_string(::getpid());
      std::unique_ptr<durability::Manager> mgr;
      if (leg.wal) {
        std::system(("rm -rf '" + dir + "'").c_str());
        durability::ManagerConfig mc;
        mc.dir = dir;
        mc.sync = leg.sync;
        if (!durability::Manager::create(mc, tree, mgr).ok()) {
          std::printf("WAL MANAGER CREATE FAILED (%s)\n", leg.name);
          return 1;
        }
      }

      SchedulerConfig sc;
      sc.policy = Policy::kFixedSize;
      sc.batch_size = 256;
      sc.max_batch = 4096;
      sc.deadline_ticks = 200'000;
      sc.clock = now_ns;
      sc.pipeline = true;
      sc.durability = mgr.get();
      const std::uint64_t t0 = now_ns();
      ServeStats st;
      {
        BatchScheduler sched(tree, sc);
        for (const WorkloadOp& op : w.ops) {
          (void)sched.submit(to_request(op), now_ns());
          sched.pump(now_ns());
        }
        sched.flush(now_ns());
        st = sched.stats();
        if (st.wal_failures != 0) {
          std::printf("WAL FAILURES (%s)\n", leg.name);
          return 1;
        }
      }
      const double secs = double(now_ns() - t0) * 1e-9;
      const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
      if (!leg.wal) rps_off = rps;
      const auto& h = st.service_latency;

      t.row({leg.name, "fixed", "0", num(double(st.completed)),
             num(double(st.batches)),
             num(st.batches ? double(st.completed) / double(st.batches) : 0.0),
             num(double(st.epochs)), num(rps / 1000.0),
             num(double(h.percentile(50)) / 1000.0),
             num(double(h.percentile(95)) / 1000.0),
             num(double(h.percentile(99)) / 1000.0),
             num(double(h.percentile(99.9)) / 1000.0)});
      Json row;
      row.set("mix", leg.name)
          .set("wal", leg.wal)
          .set("sync_policy",
               leg.wal ? durability::sync_policy_name(leg.sync) : "off")
          .set("requests", st.completed)
          .set("batches", st.batches)
          .set("wal_frames", st.wal_frames)
          .set("throughput_rps", rps)
          .set("overhead_vs_off", rps_off > 0 ? rps_off / rps : 0.0)
          .set("p50_us", double(h.percentile(50)) / 1000.0)
          .set("p95_us", double(h.percentile(95)) / 1000.0)
          .set("p99_us", double(h.percentile(99)) / 1000.0)
          .set("p999_us", double(h.percentile(99.9)) / 1000.0);
      if (leg.wal) {
        const auto ms = mgr->stats();
        row.set("wal_bytes", ms.wal_bytes).set("wal_syncs", ms.syncs);
      }
      rep.add_row(row);
      if (leg.wal) std::system(("rm -rf '" + dir + "'").c_str());
    }
  }

  // Multi-threaded producers against the background scheduler thread: the
  // MPSC ingestion path under real contention (also the TSan smoke target).
  // The stream comes from the sharded generator — each producer submits
  // exactly its own shard, so the workload bytes are identical no matter how
  // the producers interleave or how many threads generated them.
  if (!router_only && !migration_only) {
    WorkloadSpec spec = mix_spec(MixKind::kUpdateHeavy);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 11;
    const std::size_t kProducers = 4;
    const ServeWorkload w = gen_sharded_workload(spec, kProducers);

    auto cfg = default_cfg(P);
    core::PimKdTree tree(cfg, w.initial);
    SchedulerConfig sc;
    sc.policy = Policy::kDeadline;
    sc.max_batch = 4096;
    sc.deadline_ticks = 100'000;
    sc.pipeline = true;  // burst ingestion through the staged engine (TSan leg)
    BatchScheduler sched(tree, sc);
    sched.start();

    const std::uint64_t t0 = now_ns();
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = p; i < w.ops.size(); i += kProducers)
          (void)sched.submit(to_request(w.ops[i]), now_ns());
      });
    }
    for (auto& th : producers) th.join();
    sched.stop();
    const double secs = double(now_ns() - t0) * 1e-9;

    const ServeStats st = sched.stats();
    const auto& h = st.service_latency;
    const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
    t.row({"mixed_mt4", policy_name(sc.policy), "0", num(double(st.completed)),
           num(double(st.batches)),
           num(st.batches ? double(st.completed) / double(st.batches) : 0.0),
           num(double(st.epochs)), num(rps / 1000.0),
           num(double(h.percentile(50)) / 1000.0),
           num(double(h.percentile(95)) / 1000.0),
           num(double(h.percentile(99)) / 1000.0),
           num(double(h.percentile(99.9)) / 1000.0)});
    Json row;
    row.set("mix", "mixed_mt4")
        .set("policy", policy_name(sc.policy))
        .set("zipf_theta", 0.0)
        .set("requests", st.completed)
        .set("batches", st.batches)
        .set("mean_batch",
             st.batches ? double(st.completed) / double(st.batches) : 0.0)
        .set("epochs", st.epochs)
        .set("throughput_rps", rps)
        .set("p50_us", double(h.percentile(50)) / 1000.0)
        .set("p95_us", double(h.percentile(95)) / 1000.0)
        .set("p99_us", double(h.percentile(99)) / 1000.0)
        .set("p999_us", double(h.percentile(99.9)) / 1000.0)
        .set("max_us", double(h.max()) / 1000.0);
    // No SLO verdict here: all producers enqueue at once (burst, not paced),
    // so this leg measures contention-safety and liveness, not latency.
    rep.add_row(row);

    if (st.completed + st.rejected != st.submitted) {
      std::printf("LOST REQUESTS: submitted=%llu completed=%llu rejected=%llu\n",
                  (unsigned long long)st.submitted,
                  (unsigned long long)st.completed,
                  (unsigned long long)st.rejected);
      return 1;
    }
  }

  // Horizontal scale-out (DESIGN.md §12): the same read-heavy Zipfian stream
  // served through a router::Frontend at K=1 and K=4 shards. Identical
  // admission policy on both sides, so the ratio isolates what sharding buys:
  // smaller per-shard trees plus one pump thread per shard. The gate demands
  // K=4 sustain >= 1.05x K=1 throughput, but only on hosts with >= 4
  // hardware cores — on fewer cores the shard pumps time-share and the gate
  // passes vacuously with a printed caveat (same honesty rule as the
  // pipelined-engine gate above; EXPERIMENTS.md records it).
  if (!migration_only) {
    WorkloadSpec spec = mix_spec(MixKind::kReadHeavy);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 7;
    spec.zipf_theta = 0.99;
    const ServeWorkload w = gen_serve_workload(spec);

    const std::size_t shard_counts[] = {1, 4};
    double rps_k[2] = {0.0, 0.0};
    for (int i = 0; i < 2; ++i) {
      const std::size_t K = shard_counts[i];
      router::RouterConfig rc;
      rc.shards = K;
      rc.tree = default_cfg(P);
      router::Router router(rc, w.initial);

      router::FrontendConfig fc;
      fc.policy = Policy::kFixedSize;
      fc.batch_size = 256;
      fc.max_batch = 4096;
      fc.parallel_pump = true;
      router::Frontend fe(router, fc);

      const std::uint64_t t0 = now_ns();
      for (const WorkloadOp& op : w.ops) {
        (void)fe.submit(to_request(op), now_ns());
        fe.pump(now_ns());
      }
      fe.flush(now_ns());
      const double secs = double(now_ns() - t0) * 1e-9;

      const router::FrontendStats st = fe.stats();
      const auto& h = st.service_latency;
      const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
      rps_k[i] = rps;
      const std::string name = "router_k" + std::to_string(K);
      t.row({name, "fixed", num(spec.zipf_theta), num(double(st.completed)),
             num(double(st.batches)),
             num(st.batches ? double(st.completed) / double(st.batches) : 0.0),
             num(double(st.epochs)), num(rps / 1000.0),
             num(double(h.percentile(50)) / 1000.0),
             num(double(h.percentile(95)) / 1000.0),
             num(double(h.percentile(99)) / 1000.0),
             num(double(h.percentile(99.9)) / 1000.0)});
      Json row;
      row.set("mix", name)
          .set("shards", static_cast<std::uint64_t>(K))
          .set("policy", "fixed")
          .set("zipf_theta", spec.zipf_theta)
          .set("requests", st.completed)
          .set("batches", st.batches)
          .set("epochs", st.epochs)
          .set("single_shard_reads", st.single_shard_reads)
          .set("fanout_reads", st.fanout_reads)
          .set("knn_second_phase", st.knn_second_phase)
          .set("throughput_rps", rps)
          .set("p50_us", double(h.percentile(50)) / 1000.0)
          .set("p95_us", double(h.percentile(95)) / 1000.0)
          .set("p99_us", double(h.percentile(99)) / 1000.0)
          .set("p999_us", double(h.percentile(99.9)) / 1000.0)
          .set("slo_p99_us", slo_p99_us)
          .set("slo_ok", double(h.percentile(99)) / 1000.0 <= slo_p99_us);
      rep.add_row(row);
      if (st.completed + st.rejected != st.submitted ||
          st.shards.completed + st.shards.rejected != st.shards.submitted) {
        std::printf("LOST REQUESTS (%s)\n", name.c_str());
        return 1;
      }
    }

    const double router_speedup = rps_k[0] > 0 ? rps_k[1] / rps_k[0] : 0.0;
    const unsigned cores = std::thread::hardware_concurrency();
    const double gate_floor = 1.05;
    const bool vacuous = cores < 4;
    const bool gate_ok = vacuous || router_speedup >= gate_floor;
    if (vacuous)
      std::printf(
          "router gate vacuous: %u hardware core(s); the K=4 shard pumps "
          "time-share the host, so no scale-out speedup is claimable here "
          "(measured %.2fx).\n",
          cores, router_speedup);
    Json g;
    g.set("mix", "router_gate")
        .set("router_speedup", router_speedup)
        .set("gate_floor", gate_floor)
        .set("hw_cores", static_cast<std::uint64_t>(cores))
        .set("router_gate_vacuous", vacuous)
        .set("router_gate_ok", gate_ok);
    rep.add_row(g);
    t.row({"router_gate", num(router_speedup) + "x", "", "", "", "", "", "", "",
           "", "", gate_ok ? (vacuous ? "ok (vacuous)" : "ok") : "FAIL"});
  }

  // Skew-resistant migration (DESIGN.md §13): the same read-heavy zipf(0.99)
  // stream served with and without the MigrationPlanner, on a P=16 system so
  // the "max-module comm <= 2x mean" claim is honest (one hot component's
  // traffic is a hard floor on the achievable balance; at P=64 that floor
  // alone exceeds 2x the mean). Three-part gate:
  //   * balance  — per-module comm imbalance (max/mean) of the migrated run
  //     must be <= 2.0 (deterministic ledger totals, checkable on any host);
  //   * overhead — the migrated run's comm_time (sum of per-round max-module
  //     words, the paper's serving-cost metric, migration shipping included)
  //     must stay within 1.5x the no-migration baseline: moving subtrees may
  //     not blow the modeled budget chasing balance (deterministic);
  //   * wall p99 — must beat the no-migration baseline, gated only on hosts
  //     with >= 4 hardware cores (on fewer the simulator time-shares and
  //     wall latency says nothing; vacuous with a printed caveat, same
  //     honesty rule as the router gate above).
  if (!router_only) {
    WorkloadSpec spec = mix_spec(MixKind::kReadHeavy);
    spec.initial_points = n;
    spec.requests = requests;
    spec.seed = 7;
    spec.zipf_theta = 0.99;
    const ServeWorkload w = gen_serve_workload(spec);
    const std::size_t Pm = 16;

    double imb[2] = {0.0, 0.0};
    double p99s[2] = {0.0, 0.0};
    std::uint64_t comm_time[2] = {0, 0};
    std::uint64_t migs = 0;
    for (int on = 0; on < 2; ++on) {
      auto cfg = default_cfg(Pm);
      core::PimKdTree tree(cfg, w.initial);
      SchedulerConfig sc;
      sc.policy = Policy::kFixedSize;
      sc.batch_size = 256;
      sc.max_batch = 4096;
      sc.clock = now_ns;
      sc.controllers.migration = on == 1;
      sc.controllers.migration_cfg.migration_num = 4;
      sc.controllers.migration_cfg.overload_ratio = 1.15;
      sc.controllers.migration_cfg.min_epoch_gap = 3;
      sc.controllers.migration_cfg.min_ops = 512;
      sc.controllers.migration_cfg.min_heat = 16;
      BatchScheduler sched(tree, sc);

      const pim::LoadReport load0 = tree.metrics().load_report();
      const auto snap0 = tree.metrics().snapshot();
      const std::uint64_t t0 = now_ns();
      for (const WorkloadOp& op : w.ops) {
        (void)sched.submit(to_request(op), now_ns());
        sched.pump(now_ns());
      }
      sched.flush(now_ns());
      const double secs = double(now_ns() - t0) * 1e-9;
      const pim::LoadReport delta =
          tree.metrics().load_report().delta_since(load0);
      const auto d = tree.metrics().snapshot() - snap0;

      const ServeStats st = sched.stats();
      const auto& h = st.service_latency;
      const double rps = secs > 0 ? double(st.completed) / secs : 0.0;
      const LoadSummary comm = delta.comm_summary();
      imb[on] = comm.imbalance;
      p99s[on] = double(h.percentile(99)) / 1000.0;
      comm_time[on] = d.comm_time;
      if (on == 1) migs = st.migrations;

      const char* name = on ? "read_heavy_mig_on" : "read_heavy_mig_off";
      t.row({name, "fixed", num(spec.zipf_theta), num(double(st.completed)),
             num(double(st.batches)),
             num(st.batches ? double(st.completed) / double(st.batches) : 0.0),
             num(double(st.epochs)), num(rps / 1000.0),
             num(double(h.percentile(50)) / 1000.0),
             num(double(h.percentile(95)) / 1000.0), num(p99s[on]),
             num(double(h.percentile(99.9)) / 1000.0)});
      Json row;
      row.set("mix", name)
          .set("migration", on == 1)
          .set("P", static_cast<std::uint64_t>(Pm))
          .set("zipf_theta", spec.zipf_theta)
          .set("requests", st.completed)
          .set("batches", st.batches)
          .set("epochs", st.epochs)
          .set("migrations", st.migrations)
          .set("migration_words",
               on ? tree.op_stats().words_migration : std::uint64_t(0))
          .set("comm_imbalance", comm.imbalance)
          .set("comm_max", comm.max)
          .set("comm_mean", comm.mean)
          .set("comm_time", d.comm_time)
          .set("throughput_rps", rps)
          .set("p50_us", double(h.percentile(50)) / 1000.0)
          .set("p95_us", double(h.percentile(95)) / 1000.0)
          .set("p99_us", p99s[on])
          .set("p999_us", double(h.percentile(99.9)) / 1000.0);
      rep.add_row(row);
      if (st.completed + st.rejected != st.submitted) {
        std::printf("LOST REQUESTS (%s)\n", name);
        return 1;
      }
    }

    const unsigned cores = std::thread::hardware_concurrency();
    const bool vacuous = cores < 4;
    const double imbalance_ceiling = 2.0;
    const double overhead_ceiling = 1.5;
    const bool balance_ok = imb[1] <= imbalance_ceiling;
    const bool overhead_ok =
        double(comm_time[1]) <= double(comm_time[0]) * overhead_ceiling;
    const bool p99_ok = vacuous || (p99s[0] > 0 && p99s[1] <= p99s[0]);
    const bool gate_ok = balance_ok && overhead_ok && p99_ok;
    if (vacuous)
      std::printf(
          "migration gate p99 leg vacuous: %u hardware core(s); wall-clock "
          "latency time-shares the host, only the modeled ledger gates here "
          "(p99 %.0fus -> %.0fus recorded, not judged).\n",
          cores, p99s[0], p99s[1]);
    if (migs == 0) std::printf("migration gate: planner never moved!\n");
    Json g;
    g.set("mix", "migration_gate")
        .set("comm_imbalance_off", imb[0])
        .set("comm_imbalance_on", imb[1])
        .set("imbalance_ceiling", imbalance_ceiling)
        .set("comm_time_off", comm_time[0])
        .set("comm_time_on", comm_time[1])
        .set("overhead_ceiling", overhead_ceiling)
        .set("p99_off_us", p99s[0])
        .set("p99_on_us", p99s[1])
        .set("migrations", migs)
        .set("hw_cores", static_cast<std::uint64_t>(cores))
        .set("migration_gate_vacuous", vacuous)
        .set("migration_gate_ok", gate_ok && migs > 0);
    rep.add_row(g);
    t.row({"migration_gate",
           num(imb[0]) + "->" + num(imb[1]) + "x", "", "", "", "", "", "", "",
           "", "",
           gate_ok && migs > 0 ? (vacuous ? "ok (p99 vacuous)" : "ok")
                               : "FAIL"});
  }

  t.print();
  return 0;
}
