
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx_counter.cpp" "src/CMakeFiles/pimkd_core.dir/core/approx_counter.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/approx_counter.cpp.o.d"
  "/root/repo/src/core/build.cpp" "src/CMakeFiles/pimkd_core.dir/core/build.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/build.cpp.o.d"
  "/root/repo/src/core/cursor.cpp" "src/CMakeFiles/pimkd_core.dir/core/cursor.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/cursor.cpp.o.d"
  "/root/repo/src/core/decomposition.cpp" "src/CMakeFiles/pimkd_core.dir/core/decomposition.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/decomposition.cpp.o.d"
  "/root/repo/src/core/knn.cpp" "src/CMakeFiles/pimkd_core.dir/core/knn.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/knn.cpp.o.d"
  "/root/repo/src/core/pim_kdtree.cpp" "src/CMakeFiles/pimkd_core.dir/core/pim_kdtree.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/pim_kdtree.cpp.o.d"
  "/root/repo/src/core/range.cpp" "src/CMakeFiles/pimkd_core.dir/core/range.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/range.cpp.o.d"
  "/root/repo/src/core/storage.cpp" "src/CMakeFiles/pimkd_core.dir/core/storage.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/storage.cpp.o.d"
  "/root/repo/src/core/update.cpp" "src/CMakeFiles/pimkd_core.dir/core/update.cpp.o" "gcc" "src/CMakeFiles/pimkd_core.dir/core/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pimkd_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_kdtree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pimkd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
