// E6 — Table 1, "2d-DBSCAN" rows.
//
//   ParGeo baseline : O(n (k + log n)) work, O(n log_M n) communication
//   PIM clustering  : O(n log P) CPU work, O(n (k + log(n/P))) PIM time*P,
//                     O(n) communication, O(n) space.
//
// Shape: per-point PIM communication is a constant (no log n factor) while
// the baseline's pair checks grow with density k; clusterings are identical.
#include "bench_util.hpp"

#include <cmath>

#include "clustering/dbscan.hpp"

using namespace pimkd;
using namespace pimkd::bench;

int main() {
  banner("E6 bench_table1_dbscan", "Table 1 2d-DBSCAN rows",
         "pim comm/pt constant in n; baseline pair checks ~k per point; "
         "identical clusterings");
  const std::size_t P = 64;
  BenchReport rep("bench_table1_dbscan");
  const pim::BoundCheck check;
  {
    Json m;
    m.set("P", P).set("slack", check.slack());
    rep.meta(m);
  }
  Table t({"n", "clusters", "baseline pairs/pt", "pim comm/pt", "pim work/pt",
           "pim comm_time*P/comm", "rounds"});
  for (const std::size_t n : {1u << 12, 1u << 14, 1u << 16}) {
    const auto pts =
        gen_blobs_with_noise({.n = n, .dim = 2, .seed = n}, 6, 0.03, 0.2);
    // eps scaled so the expected eps-neighborhood stays ~constant in n.
    const DbscanParams p{.eps = 2.0 / std::sqrt(double(n)), .minpts = 6};
    const auto grid = dbscan_grid(pts, p);
    pim::Snapshot cost;
    const auto pim_res = dbscan_pim(
        pts, p, {.num_modules = P, .cache_words = 1 << 22, .seed = 3}, &cost);
    if (pim_res.label != grid.label)
      std::printf("WARNING: PIM and grid DBSCAN labels diverge!\n");
    t.row({num(double(n)), num(double(grid.num_clusters)),
           num(double(grid.point_pairs_checked) / double(n)),
           num(double(cost.communication) / double(n)),
           num(double(cost.pim_work) / double(n)),
           num(double(cost.comm_time) * double(P) /
               std::max<double>(1, double(cost.communication))),
           num(double(cost.rounds))});
    Json row;
    row.set("n", n).raw("snapshot", snapshot_json(cost).str());
    rep.add_row(row);
    // Table-1 2d-DBSCAN row: O(n) communication — a flat per-point constant,
    // no log n factor. The pipeline runs a handful of grid/BFS phases.
    rep.add_bound(check.custom(
        "dbscan", cost,
        {.n = n, .batch = n, .P = P, .M = 1u << 22, .alpha = 1.0,
         .batches = 8},
        60.0 * double(n), "60 * n"));
  }
  t.print();

  std::printf("\n(eps, minpts) sweep at n=2^14:\n");
  Table t2({"eps", "minpts", "clusters", "noise pts", "pim comm/pt"});
  const auto pts =
      gen_blobs_with_noise({.n = 1u << 14, .dim = 2, .seed = 9}, 6, 0.03, 0.2);
  for (const double eps : {0.01, 0.02, 0.05}) {
    for (const std::size_t minpts : {4u, 16u}) {
      const DbscanParams p{.eps = eps, .minpts = minpts};
      pim::Snapshot cost;
      const auto res = dbscan_pim(
          pts, p, {.num_modules = P, .cache_words = 1 << 22, .seed = 3},
          &cost);
      std::size_t noise = 0;
      for (const auto l : res.label) noise += l == DbscanResult::kNoise;
      t2.row({num(eps), num(double(minpts)), num(double(res.num_clusters)),
              num(double(noise)),
              num(double(cost.communication) / double(pts.size()))});
    }
  }
  t2.print();
  return 0;
}
